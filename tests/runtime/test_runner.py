"""Runtime facade tests: caching, checkpoint/resume, failure slots."""

import json
import os

import pytest

from repro.runtime import (FAILED, CampaignCheckpoint,
                           ProcessPoolExecutor, ResultCache, Runtime,
                           SerialExecutor, stable_hash)


def _double(payload):
    return 2 * payload["x"]


def _record_and_double(payload):
    """Appends one line per execution, so tests can count real work."""
    with open(payload["log"], "a") as handle:
        handle.write("{}\n".format(payload["x"]))
    return 2 * payload["x"]


def _maybe_none(payload):
    if payload["x"] == 1:
        return None  # a legitimate result, not a failure
    if payload["x"] == 2:
        raise ValueError("boom")
    return payload["x"]


def _interrupt_on_two(payload):
    if payload["x"] == 2:
        raise KeyboardInterrupt("simulated ^C mid-campaign")
    return payload["x"]


def _executions(log):
    if not os.path.exists(log):
        return 0
    with open(log) as handle:
        return sum(1 for _ in handle)


def _payloads(n, log=None):
    if log is None:
        return [{"x": i} for i in range(n)]
    return [{"x": i, "log": log} for i in range(n)]


def _keys(n):
    return [stable_hash("runner-test", i) for i in range(n)]


class TestPlainRuns:
    def test_serial_no_cache(self):
        run = Runtime().run(_double, _payloads(5))
        assert run.values == [0, 2, 4, 6, 8]
        assert run.errors == {}
        assert run.report.completed == 5
        assert run.report.cache_hits == 0

    def test_failed_slots_and_legit_none(self):
        run = Runtime().run(_maybe_none, _payloads(4))
        assert run.values[0] == 0
        assert run.values[1] is None          # legitimate None kept
        assert run.values[2] is FAILED        # failure marked distinctly
        assert run.values[3] == 3
        assert run.ok_values() == [0, None, 3]
        assert run.value_or_none(2) is None
        assert list(run.errors) == [2]
        assert "boom" in str(run.errors[2])
        assert run.report.failed == 1
        assert run.report.failure_taxonomy == {"ValueError": 1}

    def test_progress_callback(self):
        calls = []
        Runtime().run(_double, _payloads(3),
                      progress=lambda done, total: calls.append(
                          (done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]


class TestCaching:
    def test_second_run_is_all_hits(self, tmp_path):
        log = str(tmp_path / "log")
        runtime = Runtime(cache=str(tmp_path / "cache"))
        first = runtime.run(_record_and_double, _payloads(4, log),
                            keys=_keys(4))
        assert first.report.cache_hits == 0
        assert _executions(log) == 4
        second = runtime.run(_record_and_double, _payloads(4, log),
                             keys=_keys(4))
        assert second.values == first.values
        assert second.report.cache_hits == 4
        assert _executions(log) == 4  # nothing re-simulated

    def test_manifest_written(self, tmp_path):
        runtime = Runtime(cache=str(tmp_path / "cache"))
        runtime.run(_double, _payloads(3), keys=_keys(3), label="mfst")
        manifests = os.path.join(str(tmp_path / "cache"), "manifests")
        files = os.listdir(manifests)
        assert len(files) == 1
        with open(os.path.join(manifests, files[0])) as handle:
            manifest = json.load(handle)
        assert len(manifest["completed"]) == 3
        assert manifest["n_tasks"] == 3

    def test_interrupted_campaign_resumes(self, tmp_path):
        """A run that stopped after a prefix of the work re-uses every
        finished sample (deterministic stand-in for kill -9 mid-sweep)."""
        log = str(tmp_path / "log")
        runtime = Runtime(cache=str(tmp_path / "cache"))
        runtime.run(_record_and_double, _payloads(3, log),
                    keys=_keys(6)[:3], label="sweep")
        assert _executions(log) == 3
        full = runtime.run(_record_and_double, _payloads(6, log),
                           keys=_keys(6), label="sweep")
        assert full.values == [0, 2, 4, 6, 8, 10]
        assert full.report.cache_hits == 3
        assert _executions(log) == 6  # only the unfinished half ran

    def test_resumed_counter_uses_manifest(self, tmp_path):
        runtime = Runtime(cache=str(tmp_path / "cache"))
        runtime.run(_double, _payloads(4), keys=_keys(4), label="c")
        rerun = runtime.run(_double, _payloads(4), keys=_keys(4),
                            label="c")
        assert rerun.report.cache_hits == 4
        assert rerun.report.resumed == 4

    def test_mismatched_keys_rejected(self, tmp_path):
        runtime = Runtime(cache=str(tmp_path / "cache"))
        with pytest.raises(ValueError):
            runtime.run(_double, _payloads(3), keys=_keys(2))

    def test_failures_not_cached(self, tmp_path):
        runtime = Runtime(cache=str(tmp_path / "cache"))
        run = runtime.run(_maybe_none, _payloads(4), keys=_keys(4))
        assert run.values[2] is FAILED
        assert runtime.cache.n_objects() == 3
        rerun = runtime.run(_maybe_none, _payloads(4), keys=_keys(4))
        assert rerun.report.cache_hits == 3  # the failure retried


def _read_manifest(cache_dir):
    manifests = os.path.join(cache_dir, "manifests")
    (name,) = os.listdir(manifests)
    with open(os.path.join(manifests, name)) as handle:
        return json.load(handle)


class TestCheckpointFlush:
    """Regression: with ``checkpoint_every`` larger than the task count
    the manifest could trail the result cache by up to ``every - 1``
    marks — a clean finish left it stale, and an exception escaping the
    dispatch lost the progress entirely."""

    def test_clean_finish_flushes_pending_marks(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runtime = Runtime(cache=cache_dir, checkpoint_every=100)
        runtime.run(_double, _payloads(3), keys=_keys(3), label="fl")
        manifest = _read_manifest(cache_dir)
        assert manifest["n_completed"] == 3
        assert len(manifest["completed"]) == 3

    def test_batched_clean_finish_flushes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runtime = Runtime(cache=cache_dir, checkpoint_every=100)
        runtime.run_batched(_chunk_double, _payloads(5), keys=_keys(5),
                            batch_size=2, label="flb")
        assert _read_manifest(cache_dir)["n_completed"] == 5

    def test_exception_path_flushes_progress(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runtime = Runtime(cache=cache_dir, checkpoint_every=100)
        with pytest.raises(KeyboardInterrupt):
            runtime.run(_interrupt_on_two, _payloads(5), keys=_keys(5),
                        label="kill")
        manifest = _read_manifest(cache_dir)
        assert manifest["n_completed"] == 2  # tasks 0 and 1 finished

    def test_interrupted_progress_resumes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runtime = Runtime(cache=cache_dir, checkpoint_every=100)
        with pytest.raises(KeyboardInterrupt):
            runtime.run(_interrupt_on_two, _payloads(5), keys=_keys(5),
                        label="kill")
        rerun = runtime.run(_double, _payloads(5), keys=_keys(5),
                            label="kill")
        assert rerun.report.cache_hits == 2
        assert rerun.report.resumed == 2

    def test_pending_marks_counter(self, tmp_path):
        checkpoint = CampaignCheckpoint("abc123", root=str(tmp_path),
                                        every=10)
        checkpoint.mark_done("k1")
        checkpoint.mark_done("k2")
        assert checkpoint.pending_marks == 2
        checkpoint.flush()
        assert checkpoint.pending_marks == 0
        assert os.path.exists(checkpoint.path)


class TestFromEnv:
    def test_defaults_are_serial_uncached(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        runtime = Runtime.from_env()
        assert isinstance(runtime.executor, SerialExecutor)
        assert runtime.cache is None
        assert not runtime.parallel

    def test_env_knobs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        runtime = Runtime.from_env()
        assert isinstance(runtime.executor, ProcessPoolExecutor)
        assert runtime.executor.n_jobs == 3
        assert isinstance(runtime.cache, ResultCache)
        assert runtime.cache.root == str(tmp_path / "c")

    def test_explicit_args_beat_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        runtime = Runtime.from_env(jobs=1,
                                   cache_dir=str(tmp_path / "d"))
        assert isinstance(runtime.executor, SerialExecutor)
        assert runtime.cache.root == str(tmp_path / "d")

    def test_jobs_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        runtime = Runtime.from_env(jobs=0)
        assert getattr(runtime.executor, "n_jobs", 1) == max(
            1, os.cpu_count() or 1)


class TestReport:
    def test_summary_fields(self, tmp_path):
        runtime = Runtime(cache=str(tmp_path / "cache"))
        run = runtime.run(_double, _payloads(4), keys=_keys(4),
                          label="telemetry")
        summary = run.report.summary()
        assert summary["label"] == "telemetry"
        assert summary["completed"] == 4
        assert summary["cache_hits"] == 0
        assert summary["cache_misses"] == 4
        assert summary["wall_time_s"] >= 0.0
        text = run.report.format_report()
        assert "telemetry" in text

    def test_report_json_round_trip(self, tmp_path):
        run = Runtime().run(_double, _payloads(2))
        path = str(tmp_path / "report.json")
        run.report.to_json(path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["completed"] == 2


def _chunk_double(payloads):
    return [2 * p["x"] for p in payloads]


def _chunk_record_and_double(payloads):
    return [_record_and_double(p) for p in payloads]


def _chunk_short(payloads):
    return [0] * (len(payloads) - 1)


def _chunk_boom(payloads):
    if any(p["x"] == 2 for p in payloads):
        raise ValueError("chunk boom")
    return [2 * p["x"] for p in payloads]


class TestBatchedRuns:
    def test_values_aligned(self):
        run = Runtime().run_batched(_chunk_double, _payloads(7),
                                    batch_size=3)
        assert run.values == [0, 2, 4, 6, 8, 10, 12]
        assert run.errors == {}

    def test_progress_counts_items_not_chunks(self):
        calls = []
        Runtime().run_batched(_chunk_double, _payloads(5), batch_size=2,
                              progress=lambda done, total: calls.append(
                                  (done, total)))
        assert calls == [(2, 5), (4, 5), (5, 5)]

    def test_misaligned_chunk_fails_whole_chunk(self):
        run = Runtime().run_batched(_chunk_short, _payloads(4),
                                    batch_size=2)
        assert run.values == [FAILED] * 4
        assert sorted(run.errors) == [0, 1, 2, 3]
        assert all(isinstance(e, ValueError)
                   for e in run.errors.values())

    def test_chunk_error_confined_to_its_chunk(self):
        run = Runtime().run_batched(_chunk_boom, _payloads(6),
                                    batch_size=2)
        assert run.values[:2] == [0, 2]
        assert sorted(run.errors) == [2, 3]
        assert run.values[4:] == [8, 10]

    def test_cache_granularity_is_per_item(self, tmp_path):
        """Cached items never re-enter a chunk: a partial warm cache
        shrinks the batched work to the misses only."""
        log = str(tmp_path / "log")
        runtime = Runtime(cache=str(tmp_path / "cache"))
        runtime.run(_record_and_double, _payloads(3, log),
                    keys=_keys(6)[:3], label="b")
        assert _executions(log) == 3
        full = runtime.run_batched(_chunk_record_and_double,
                                   _payloads(6, log), keys=_keys(6),
                                   batch_size=4, label="b")
        assert full.values == [0, 2, 4, 6, 8, 10]
        assert full.report.cache_hits == 3
        assert _executions(log) == 6

    def test_warm_rerun_is_all_hits(self, tmp_path):
        log = str(tmp_path / "log")
        runtime = Runtime(cache=str(tmp_path / "cache"))
        runtime.run_batched(_chunk_record_and_double, _payloads(5, log),
                            keys=_keys(5), batch_size=2)
        rerun = runtime.run_batched(_chunk_record_and_double,
                                    _payloads(5, log), keys=_keys(5),
                                    batch_size=2)
        assert rerun.values == [0, 2, 4, 6, 8]
        assert rerun.report.cache_hits == 5
        assert _executions(log) == 5

    def test_process_pool_chunks(self, tmp_path):
        runtime = Runtime(executor=ProcessPoolExecutor(n_jobs=2))
        run = runtime.run_batched(_chunk_double, _payloads(6),
                                  batch_size=2)
        assert run.values == [0, 2, 4, 6, 8, 10]
