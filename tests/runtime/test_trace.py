"""JSONL trace sink: strict encoding, per-task events, per-item chunk
attribution through the real batched engine."""

import json

import pytest

from repro.runtime import (Runtime, TraceWriter, read_trace, stable_hash)


def _double(payload):
    return 2 * payload["x"]


def _fail_on_odd(payload):
    if payload["x"] % 2:
        raise ValueError("odd input {}".format(payload["x"]))
    return payload["x"]


def _chunk_double(payloads):
    return [2 * p["x"] for p in payloads]


def _rc(r):
    from repro.spice import Circuit, Pulse
    circuit = Circuit("rc")
    circuit.add_vsource(
        "V1", "in", "0",
        Pulse(0.0, 1.0, delay=1e-9, rise=0.1e-9, width=2e-9))
    circuit.add_resistor("R1", "in", "out", r)
    circuit.add_capacitor("C1", "out", "0", 1e-12)
    return circuit


def _simulate_one(payload):
    from repro.spice import run_transient
    wf = run_transient(_rc(payload["r"]), 2e-9, 20e-12)
    return float(wf["out"][-1])


def _simulate_chunk(payloads):
    from repro.spice import run_transient_batch
    waveforms = run_transient_batch([_rc(p["r"]) for p in payloads],
                                    2e-9, 20e-12)
    return [float(wf["out"][-1]) for wf in waveforms]


def _payloads(n):
    return [{"x": i} for i in range(n)]


def _keys(label, n):
    return [stable_hash(label, i) for i in range(n)]


class TestTraceWriter:
    def test_events_append_as_json_lines(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as trace:
            trace.emit({"event": "a", "n": 1})
            trace.emit({"event": "b", "n": 2})
            assert trace.n_events == 2
        events = read_trace(path)
        assert [e["event"] for e in events] == ["a", "b"]

    def test_lines_are_strict_json(self, tmp_path):
        """Non-finite floats must never appear as bare NaN tokens."""
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as trace:
            trace.emit({"event": "a", "bad": float("nan")})
        with open(path) as handle:
            for line in handle:
                json.loads(line, parse_constant=pytest.fail)

    def test_no_file_until_first_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(str(path)):
            assert not path.exists()


class TestRunTracing:
    def test_one_event_per_executed_task_plus_report(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        runtime = Runtime(trace=path)
        runtime.run(_double, _payloads(3), label="traced")
        events = read_trace(path)
        tasks = [e for e in events if e["event"] == "task"]
        reports = [e for e in events if e["event"] == "report"]
        assert len(tasks) == 3
        assert sorted(t["index"] for t in tasks) == [0, 1, 2]
        assert all(t["label"] == "traced" for t in tasks)
        assert all(t["ok"] for t in tasks)
        assert len(reports) == 1
        assert reports[0]["summary"]["completed"] == 3

    def test_cache_hits_produce_no_task_events(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        runtime = Runtime(cache=str(tmp_path / "cache"), trace=path)
        keys = _keys("trace-warm", 3)
        runtime.run(_double, _payloads(3), keys=keys, label="w")
        runtime.run(_double, _payloads(3), keys=keys, label="w")
        events = read_trace(path)
        tasks = [e for e in events if e["event"] == "task"]
        assert len(tasks) == 3  # cold run only
        assert all(t["key"] in keys for t in tasks)
        reports = [e for e in events if e["event"] == "report"]
        assert len(reports) == 2
        assert reports[1]["summary"]["cache_hits"] == 3

    def test_failures_carry_error_type(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        Runtime(trace=path).run(_fail_on_odd, _payloads(2))
        tasks = {e["index"]: e for e in read_trace(path)
                 if e["event"] == "task"}
        assert tasks[0]["ok"] and tasks[0]["error"] is None
        assert not tasks[1]["ok"]
        assert tasks[1]["error"] == "ValueError"

    def test_task_events_carry_solver_stats(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        Runtime(trace=path).run(_simulate_one,
                                [{"r": 1e3}, {"r": 2e3}])
        tasks = [e for e in read_trace(path) if e["event"] == "task"]
        for event in tasks:
            assert event["stats"]["counters"]["newton_solves"] > 0


class TestBatchedTracing:
    def test_one_event_per_item_with_chunk_fields(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        Runtime(trace=path).run_batched(_chunk_double, _payloads(5),
                                        batch_size=2, label="b")
        tasks = [e for e in read_trace(path) if e["event"] == "task"]
        assert sorted(t["index"] for t in tasks) == [0, 1, 2, 3, 4]
        assert {t["chunk_size"] for t in tasks} == {2, 1}
        # one chunk_stats record per chunk, on its first item
        assert sum(t["chunk_stats"] is not None for t in tasks) == 3

    def test_batched_engine_attributes_effort_per_item(self, tmp_path):
        """The lockstep engine's effort must land on individual samples
        (via the scope's per-sample table), not lump into one chunk
        number."""
        path = str(tmp_path / "t.jsonl")
        run = Runtime(trace=path).run_batched(
            _simulate_chunk, [{"r": r} for r in (1e3, 2e3, 4e3, 8e3, 16e3)],
            batch_size=3, label="batched")
        tasks = [e for e in read_trace(path) if e["event"] == "task"]
        assert len(tasks) == 5
        per_item = [t["stats"]["counters"] for t in tasks]
        assert all(c["newton_solves"] > 0 for c in per_item)
        assert all(c["newton_iterations"] >= c["newton_solves"]
                   for c in per_item)
        # item attributions partition the campaign totals exactly
        assert sum(c["newton_solves"] for c in per_item) == \
            run.report.newton_solves
        assert sum(c["newton_iterations"] for c in per_item) == \
            run.report.newton_iterations
        # per-item durations are shares of their chunk, and the report
        # books one duration entry per item, not per chunk
        assert len(run.report.durations) == 5
        assert sum(t["duration_s"] for t in tasks) == pytest.approx(
            sum(run.report.durations))

    def test_per_item_values_match_scalar_reference(self, tmp_path):
        """Tracing must not perturb results: batched values equal the
        scalar engine's."""
        payloads = [{"r": r} for r in (1e3, 3e3)]
        run = Runtime(trace=str(tmp_path / "t.jsonl")).run_batched(
            _simulate_chunk, payloads, batch_size=2)
        reference = [_simulate_one(p) for p in payloads]
        assert run.values == pytest.approx(reference, abs=1e-6)


class TestEnvAndConfigWiring:
    def test_from_env_reads_repro_trace(self, monkeypatch, tmp_path):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_TRACE", path)
        runtime = Runtime.from_env()
        assert isinstance(runtime.trace, TraceWriter)
        assert runtime.trace.path == path

    def test_from_env_default_is_untraced(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert Runtime.from_env().trace is None

    def test_experiment_config_carries_trace(self, monkeypatch,
                                             tmp_path):
        from repro.core.experiments import ExperimentConfig
        path = str(tmp_path / "cfg.jsonl")
        monkeypatch.setenv("REPRO_TRACE", path)
        config = ExperimentConfig.from_env()
        assert config.trace == path
        runtime = Runtime.from_config(config)
        assert isinstance(runtime.trace, TraceWriter)
