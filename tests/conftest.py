"""Shared fixtures.

Electrical simulations dominate test runtime, so expensive artefacts
(reference paths, transfer curves, calibrations) are session-scoped and
computed at a coarser-but-adequate time step.
"""

import numpy as np
import pytest

from repro.cells import build_path, default_technology
from repro.montecarlo import sample_population

#: coarse-but-adequate step for tests (stimulus edges are >= 50 ps)
TEST_DT = 4e-12


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture(scope="session")
def test_dt():
    return TEST_DT


@pytest.fixture()
def fresh_path(tech):
    """A fresh nominal 7-inverter sensitized path (mutable stimulus)."""
    return build_path(tech=tech)


@pytest.fixture(scope="session")
def small_population():
    """Three MC instances — enough to exercise population plumbing."""
    return sample_population(3, base_seed=11)


@pytest.fixture(scope="session")
def nominal_transfer_curve(tech):
    """Transfer curve of the reference path, shared across tests."""
    from repro.core import characterize_transfer

    def builder():
        return build_path(tech=tech)

    grid = np.linspace(0.15e-9, 0.60e-9, 10)
    return characterize_transfer(builder, grid, dt=TEST_DT)
