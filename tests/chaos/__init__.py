"""Campaign-level chaos-injection suite (tests/chaos)."""
