"""Chaos campaigns: real runs under injected faults vs. a serial reference.

Each test runs a small but real campaign through :class:`Runtime` with
one fault kind injected — worker kills, task hangs, cache corruption —
and asserts *exact result parity* with an undisturbed serial run plus
honest robustness accounting.  Determinism is the point: the chaos
decisions are pure hashes of (seed, kind, task), so these runs inject
the same faults on every machine, every time.

Seed 9 was chosen because on 12 tasks it kills workers for tasks
{2, 5, 8, 9} (p=0.2), corrupts the cached objects of tasks
{3, 4, 8, 10, 11} (p=0.3) and hangs tasks {9, 10} (p=0.25).
"""

import numpy as np
import pytest

from repro.runtime import (ChaosConfig, ProcessPoolExecutor, Runtime,
                           read_trace, stable_hash)
from repro.runtime.stats import current_stats

N = 12
PAYLOADS = [{"i": i} for i in range(N)]
KEYS = [stable_hash("chaos-test", i) for i in range(N)]
SEED = 9


def _measure(payload):
    """A deterministic stand-in for one delay-test sample: burns a
    known amount of 'solver' effort and returns exact floats."""
    i = payload["i"]
    stats = current_stats()
    stats.count("newton_solves", 1 + i % 3)
    stats.count("newton_iterations", 3 * (1 + i % 3))
    x = np.linspace(0.0, 1.0, 16) * (i + 1)
    return {"i": i, "area": float(x.sum()), "peak": float(x.max())}


@pytest.fixture(scope="module")
def reference():
    """The undisturbed serial run every chaos campaign must match."""
    return Runtime().run(_measure, PAYLOADS, label="chaos-ref")


def _chaos_runtime(tmp_path, chaos, timeout=None, cache=True,
                   trace=None):
    executor = ProcessPoolExecutor(n_jobs=2, chunk_size=2, retries=2,
                                   timeout=timeout, backoff=0.01)
    return Runtime(executor=executor,
                   cache=str(tmp_path / "cache") if cache else None,
                   trace=trace, chaos=chaos)


class TestWorkerKillChaos:
    def test_results_bit_identical_to_serial(self, tmp_path, reference):
        runtime = _chaos_runtime(
            tmp_path, ChaosConfig(kill_p=0.2, seed=SEED))
        run = runtime.run(_measure, PAYLOADS, keys=KEYS, label="chaos")
        assert run.values == reference.values
        assert run.errors == {}
        report = run.report
        assert report.failed == 0
        assert report.worker_crashes > 0
        assert report.pool_rebuilds > 0
        assert report.poisoned == 0

    def test_solver_counters_match_serial(self, tmp_path, reference):
        """Lost executions (killed workers, lost chunk mates) must not
        leak solver effort into the totals: only each task's final
        successful execution reports."""
        runtime = _chaos_runtime(
            tmp_path, ChaosConfig(kill_p=0.2, seed=SEED))
        run = runtime.run(_measure, PAYLOADS, keys=KEYS, label="chaos")
        assert run.report.newton_solves == \
            reference.report.newton_solves
        assert run.report.newton_iterations == \
            reference.report.newton_iterations


class TestHangChaos:
    def test_hung_tasks_reclaimed_and_recovered(self, tmp_path,
                                                reference):
        chaos = ChaosConfig(hang_p=0.25, seed=SEED, hang_s=30.0)
        runtime = _chaos_runtime(tmp_path, chaos, timeout=1.0)
        run = runtime.run(_measure, PAYLOADS, keys=KEYS, label="chaos")
        assert run.values == reference.values
        assert run.errors == {}
        report = run.report
        assert report.failed == 0
        # the hangs cost a timeout round + pool respawn, then recovered
        assert report.retries > 0
        assert report.pool_rebuilds > 0


class TestCacheCorruptionChaos:
    def test_warm_resume_quarantines_and_recomputes(self, tmp_path,
                                                    reference):
        chaos = ChaosConfig(corrupt_p=0.3, seed=SEED)
        cold = _chaos_runtime(tmp_path, chaos)
        cold_run = cold.run(_measure, PAYLOADS, keys=KEYS, label="cold")
        # corruption happens on put: the cold run's in-memory results
        # are untouched...
        assert cold_run.values == reference.values
        assert cold_run.report.cache_quarantined == 0

        # ...and the warm resume meets the rotten objects: it must
        # quarantine them, recompute, and still match the reference.
        warm = Runtime(cache=str(tmp_path / "cache"))
        warm_run = warm.run(_measure, PAYLOADS, keys=KEYS, label="warm")
        assert warm_run.values == reference.values
        assert warm_run.errors == {}
        report = warm_run.report
        assert report.cache_quarantined == 5  # seed 9: tasks 3,4,8,10,11
        assert report.cache_hits == N - 5
        assert report.cache_misses == 5
        assert report.failed == 0

        # a second warm pass sees only healthy re-written objects
        again = Runtime(cache=str(tmp_path / "cache"))
        again_run = again.run(_measure, PAYLOADS, keys=KEYS,
                              label="warm2")
        assert again_run.values == reference.values
        assert again_run.report.cache_quarantined == 0
        assert again_run.report.cache_hits == N


class TestTraceReproducesCounters:
    def test_trace_crash_counts_match_report(self, tmp_path, reference):
        trace_path = str(tmp_path / "trace.jsonl")
        runtime = _chaos_runtime(
            tmp_path, ChaosConfig(kill_p=0.2, seed=SEED),
            trace=trace_path)
        run = runtime.run(_measure, PAYLOADS, keys=KEYS, label="chaos")
        runtime.trace.close()
        events = read_trace(trace_path)
        tasks = [e for e in events if e["event"] == "task"]
        assert len(tasks) == N
        assert sum(e["crashes"] for e in tasks) == \
            run.report.worker_crashes
        (summary,) = [e["summary"] for e in events
                      if e["event"] == "report"]
        for field in ("worker_crashes", "poisoned", "pool_rebuilds",
                      "cache_quarantined", "completed", "failed"):
            assert summary[field] == run.report.summary()[field], field
