"""Flip-flop timing model tests."""

import pytest

from repro.dft import FlipFlopTiming
from repro.montecarlo import NominalModel, VariationModel


class TestFlipFlopTiming:
    def test_nominal_overhead(self):
        ff = FlipFlopTiming(tau_cq=80e-12, tau_dc=60e-12)
        assert ff.nominal_overhead == pytest.approx(140e-12)

    def test_sampled_without_sample_is_nominal(self):
        ff = FlipFlopTiming()
        assert ff.sampled_overhead(None) == ff.nominal_overhead

    def test_nominal_model_gives_nominal(self):
        ff = FlipFlopTiming()
        assert ff.sampled_overhead(NominalModel()) == ff.nominal_overhead

    def test_sampled_overhead_fluctuates(self):
        ff = FlipFlopTiming()
        values = {ff.sampled_overhead(VariationModel(seed=s))
                  for s in range(5)}
        assert len(values) == 5  # all differ

    def test_sampled_overhead_deterministic(self):
        ff = FlipFlopTiming()
        s = VariationModel(seed=4)
        assert ff.sampled_overhead(s) == ff.sampled_overhead(
            VariationModel(seed=4))

    def test_fluctuation_bounded(self):
        ff = FlipFlopTiming()
        for s in range(30):
            overhead = ff.sampled_overhead(
                VariationModel(seed=s, sigma_timing=0.05))
            assert 0.85 * ff.nominal_overhead < overhead < (
                1.15 * ff.nominal_overhead)

    def test_rejects_negative_timing(self):
        with pytest.raises(ValueError):
            FlipFlopTiming(tau_cq=-1e-12)
