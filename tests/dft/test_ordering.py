"""Transition-ordering baseline tests."""

import pytest

from repro.dft import (OrderingTest, build_dual_path,
                       calibrate_ordering_test, ordering_coverage,
                       output_arrival, sweep_ordering_measurements)
from repro.faults import ExternalOpen
from repro.montecarlo import NominalModel, sample_population

DT = 5e-12


class TestDualPath:
    def test_lengths(self):
        dual = build_dual_path(length_a=5, length_b=7)
        assert dual.path_a.n_gates == 5
        assert dual.path_b.n_gates == 7

    def test_shared_die_variation(self):
        from repro.montecarlo import VariationModel
        sample = VariationModel(seed=11)
        dual = build_dual_path(sample=sample)
        # both chains carry the same die-to-die technology factors
        assert dual.path_a.tech.kpn == pytest.approx(
            dual.path_b.tech.kpn)

    def test_shorter_path_arrives_first(self):
        dual = build_dual_path(sample=NominalModel())
        t_a = output_arrival(dual.path_a, dt=DT)
        t_b = output_arrival(dual.path_b, dt=DT)
        assert t_a < t_b


class TestOrderingDecision:
    def test_healthy_order_passes(self):
        test = OrderingTest(nominal_gap=200e-12, guard=150e-12)
        assert not test.detects(1.0e-9, 1.2e-9)

    def test_flip_detected(self):
        test = OrderingTest(nominal_gap=200e-12, guard=150e-12)
        assert test.detects(1.3e-9, 1.2e-9)

    def test_missing_victim_transition_detected(self):
        test = OrderingTest(200e-12, 150e-12)
        assert test.detects(None, 1.2e-9)

    def test_missing_reference_not_attributed(self):
        test = OrderingTest(200e-12, 150e-12)
        assert not test.detects(1.0e-9, None)


class TestCalibration:
    @pytest.fixture(scope="class")
    def samples(self):
        return sample_population(4, base_seed=3)

    def test_positive_guard(self, samples):
        test = calibrate_ordering_test(samples, dt=DT)
        assert test.guard > 0.0
        assert test.nominal_gap >= test.guard

    def test_too_fine_ordering_rejected(self, samples):
        """Equal-length paths: fluctuations flip the order on some
        healthy instance — the paper's 'too close' caveat."""
        with pytest.raises(ValueError):
            calibrate_ordering_test(samples, length_a=7, length_b=7,
                                    dt=DT)


class TestCoverage:
    def test_coverage_monotone_and_reaches_one(self):
        samples = sample_population(3, base_seed=3)
        test = calibrate_ordering_test(samples, dt=DT)
        resistances = [2e3, 16e3, 60e3]
        raw = sweep_ordering_measurements(
            samples, lambda r: ExternalOpen(2, r), resistances, dt=DT)
        coverage = ordering_coverage(raw, resistances, test)
        assert all(b >= a for a, b in zip(coverage, coverage[1:]))
        assert coverage[0] == 0.0    # small defect hides in the gap
        assert coverage[-1] == 1.0   # gross defect flips the order
