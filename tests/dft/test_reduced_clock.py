"""Reduced-clock DF-testing baseline tests."""

import math

import pytest

from repro.dft import DelayFaultTest, FlipFlopTiming, calibrate_t_star
from repro.montecarlo import sample_population


@pytest.fixture()
def ff():
    return FlipFlopTiming(tau_cq=80e-12, tau_dc=60e-12)


class TestDelayFaultTest:
    def test_applied_period_scales(self, ff):
        test = DelayFaultTest(1e-9, ff)
        assert test.applied_period(0.9) == pytest.approx(0.9e-9)
        assert test.applied_period(1.1) == pytest.approx(1.1e-9)

    def test_detects_slow_path(self, ff):
        test = DelayFaultTest(1e-9, ff)
        # d + 140ps overhead > 1ns -> detected
        assert test.detects(900e-12)

    def test_passes_fast_path(self, ff):
        test = DelayFaultTest(1e-9, ff)
        assert not test.detects(700e-12)

    def test_infinite_delay_always_detected(self, ff):
        test = DelayFaultTest(1e-9, ff)
        assert test.detects(math.inf)
        assert test.detects(math.inf, t_factor=1.1)

    def test_larger_period_detects_less(self, ff):
        test = DelayFaultTest(1e-9, ff)
        d = 900e-12
        assert test.detects(d, t_factor=0.9)
        assert test.detects(d, t_factor=1.0)
        assert not test.detects(d, t_factor=1.1)

    def test_rejects_bad_args(self, ff):
        with pytest.raises(ValueError):
            DelayFaultTest(0.0, ff)
        with pytest.raises(ValueError):
            DelayFaultTest(1e-9, ff, skew_tolerance=1.0)


class TestCalibration:
    def test_no_false_positive_at_worst_droop(self, ff):
        samples = sample_population(10, base_seed=5)
        delays = [750e-12 + 10e-12 * i for i in range(10)]
        test = calibrate_t_star(delays, samples, ff, skew_tolerance=0.1)
        # even with the clock 10% low, every fault-free instance passes
        for d, s in zip(delays, samples):
            assert not test.detects(d, sample=s, t_factor=0.9)

    def test_t_star_is_tight(self, ff):
        """T* is the smallest period meeting the yield constraint: the
        worst instance sits exactly at the 0.9*T* boundary."""
        samples = sample_population(5, base_seed=2)
        delays = [800e-12] * 5
        test = calibrate_t_star(delays, samples, ff, skew_tolerance=0.1)
        worst = max(d + ff.sampled_overhead(s)
                    for d, s in zip(delays, samples))
        assert 0.9 * test.t_star == pytest.approx(worst)

    def test_misaligned_inputs_rejected(self, ff):
        with pytest.raises(ValueError):
            calibrate_t_star([1e-9], sample_population(2), ff)

    def test_empty_rejected(self, ff):
        with pytest.raises(ValueError):
            calibrate_t_star([], [], ff)

    def test_broken_structure_rejected(self, ff):
        samples = sample_population(2)
        with pytest.raises(ValueError):
            calibrate_t_star([1e-9, math.inf], samples, ff)
