"""Clock-tree skew model tests."""

import numpy as np
import pytest

from repro.dft import FlipFlopTiming
from repro.dft.clock_network import (ClockTree, calibrate_t_star_with_tree,
                                     farthest_leaf_pair)
from repro.montecarlo import NominalModel, VariationModel, sample_population


class TestStructure:
    def test_leaf_count(self):
        assert ClockTree(depth=4).n_leaves == 16

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ClockTree(depth=0)
        with pytest.raises(ValueError):
            ClockTree(buffer_delay=0.0)

    def test_leaf_bounds(self):
        tree = ClockTree(depth=3)
        with pytest.raises(ValueError):
            tree.leaf_delay(8)


class TestNominalDelays:
    def test_nominal_insertion_delay(self):
        tree = ClockTree(depth=4, buffer_delay=70e-12)
        assert tree.leaf_delay(5) == pytest.approx(4 * 70e-12)

    def test_nominal_skew_zero(self):
        tree = ClockTree(depth=4)
        assert tree.skew(0, 15) == pytest.approx(0.0)
        assert tree.skew(0, 15, NominalModel()) == pytest.approx(0.0)


class TestFluctuatedSkew:
    def test_deterministic_per_sample(self):
        tree = ClockTree(depth=4)
        s = VariationModel(seed=5)
        assert tree.skew(0, 15, s) == tree.skew(
            0, 15, VariationModel(seed=5))

    def test_sibling_leaves_share_most_buffers(self):
        """Adjacent leaves share all buffers but the last level, so
        their skew spread is much smaller than disjoint branches'."""
        tree = ClockTree(depth=5)
        samples = sample_population(30, base_seed=2)
        near = np.std(tree.skew_population(samples, 0, 1))
        far = np.std(tree.skew_population(samples, 0,
                                          tree.n_leaves - 1))
        assert far > 1.5 * near

    def test_skew_antisymmetric(self):
        tree = ClockTree(depth=4)
        s = VariationModel(seed=9)
        assert tree.skew(3, 12, s) == pytest.approx(-tree.skew(12, 3, s))

    def test_applied_period_includes_skew(self):
        tree = ClockTree(depth=3)
        s = VariationModel(seed=9)
        t = tree.applied_period(1e-9, 0, 7, s)
        assert t == pytest.approx(1e-9 + tree.skew(0, 7, s))

    def test_farthest_pair(self):
        tree = ClockTree(depth=4)
        launch, capture = farthest_leaf_pair(tree)
        assert (launch, capture) == (0, 15)


class TestTreeCalibration:
    def test_no_false_positive_under_any_sampled_skew(self):
        tree = ClockTree(depth=4)
        ff = FlipFlopTiming()
        samples = sample_population(20, base_seed=4)
        delays = [800e-12] * len(samples)
        test = calibrate_t_star_with_tree(delays, samples, ff, tree, 0,
                                          15)
        for d, s in zip(delays, samples):
            applied = tree.applied_period(test.t_star, 0, 15, s)
            assert applied >= d + ff.sampled_overhead(s) - 1e-15

    def test_tree_calibration_costs_coverage(self):
        """The explicit skew margin forces a larger T* than the no-skew
        calibration — the paper's quality-vs-yield trade-off."""
        from repro.dft import calibrate_t_star
        tree = ClockTree(depth=5, buffer_delay=90e-12)
        ff = FlipFlopTiming()
        samples = sample_population(20, base_seed=4)
        delays = [800e-12] * len(samples)
        plain = calibrate_t_star(delays, samples, ff, skew_tolerance=0.0)
        with_tree = calibrate_t_star_with_tree(delays, samples, ff, tree,
                                               0, 31)
        assert with_tree.t_star >= plain.t_star

    def test_misaligned_inputs_rejected(self):
        tree = ClockTree(depth=2)
        with pytest.raises(ValueError):
            calibrate_t_star_with_tree([1e-9], sample_population(2),
                                       FlipFlopTiming(), tree, 0, 3)
