"""Stimulus waveform unit tests."""

import numpy as np
import pytest

from repro.spice import Dc, Pulse, Pwl, make_stimulus
from repro.spice.errors import NetlistError


class TestDc:
    def test_constant_value(self):
        src = Dc(2.5)
        assert src.value_at(0.0) == 2.5
        assert src.value_at(1e-3) == 2.5

    def test_vectorised(self):
        src = Dc(-1.0)
        values = src.values_at(np.array([0.0, 1.0, 2.0]))
        assert np.all(values == -1.0)

    def test_no_breakpoints(self):
        assert Dc(1.0).breakpoints(1.0) == []


class TestPulse:
    def test_baseline_before_delay(self):
        p = Pulse(0.0, 1.0, delay=1e-9, rise=1e-10, width=1e-9)
        assert p.value_at(0.0) == 0.0
        assert p.value_at(0.999e-9) == 0.0

    def test_full_amplitude_on_plateau(self):
        p = Pulse(0.0, 1.0, delay=1e-9, rise=1e-10, width=1e-9)
        assert p.value_at(1.5e-9) == pytest.approx(1.0)

    def test_midpoint_of_rise(self):
        p = Pulse(0.0, 2.0, delay=0.0, rise=1e-10, width=1e-9)
        assert p.value_at(0.5e-10) == pytest.approx(1.0)

    def test_midpoint_of_fall(self):
        p = Pulse(0.0, 2.0, delay=0.0, rise=1e-10, width=1e-9, fall=2e-10)
        t_mid_fall = 1e-10 + 1e-9 + 1e-10
        assert p.value_at(t_mid_fall) == pytest.approx(1.0)

    def test_returns_to_baseline(self):
        p = Pulse(0.5, 1.5, delay=0.0, rise=1e-10, width=1e-9)
        assert p.value_at(10e-9) == pytest.approx(0.5)

    def test_low_going_pulse(self):
        p = Pulse(1.8, 0.0, delay=0.0, rise=1e-10, width=1e-9)
        assert p.value_at(0.0) == pytest.approx(1.8)
        assert p.value_at(0.5e-9) == pytest.approx(0.0)

    def test_periodic_repeats(self):
        p = Pulse(0.0, 1.0, delay=0.0, rise=1e-10, width=1e-9, period=4e-9)
        assert p.value_at(0.5e-9) == pytest.approx(1.0)
        assert p.value_at(4.5e-9) == pytest.approx(1.0)
        assert p.value_at(3.9e-9) == pytest.approx(0.0)

    def test_breakpoints_cover_corners(self):
        p = Pulse(0.0, 1.0, delay=1e-9, rise=1e-10, width=1e-9, fall=2e-10)
        corners = p.breakpoints(5e-9)
        assert 1e-9 in corners
        assert pytest.approx(1.1e-9) in corners
        assert pytest.approx(2.1e-9) in corners
        assert pytest.approx(2.3e-9) in corners

    def test_rejects_nonpositive_rise(self):
        with pytest.raises(NetlistError):
            Pulse(0, 1, rise=0.0)

    def test_rejects_negative_width(self):
        with pytest.raises(NetlistError):
            Pulse(0, 1, width=-1e-9)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(NetlistError):
            Pulse(0, 1, period=0.0)


class TestPwl:
    def test_interpolates_between_points(self):
        p = Pwl([(0.0, 0.0), (1.0, 2.0)])
        assert p.value_at(0.5) == pytest.approx(1.0)

    def test_clamps_outside_range(self):
        p = Pwl([(1.0, 3.0), (2.0, 5.0)])
        assert p.value_at(0.0) == pytest.approx(3.0)
        assert p.value_at(10.0) == pytest.approx(5.0)

    def test_vectorised_matches_scalar(self):
        p = Pwl([(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)])
        ts = np.linspace(0, 2, 9)
        vec = p.values_at(ts)
        scalar = [p.value_at(t) for t in ts]
        assert np.allclose(vec, scalar)

    def test_breakpoints_are_given_points(self):
        p = Pwl([(0.0, 0.0), (1.0, 1.0), (3.0, 0.0)])
        assert p.breakpoints(2.0) == [0.0, 1.0]

    def test_rejects_empty(self):
        with pytest.raises(NetlistError):
            Pwl([])

    def test_rejects_decreasing_times(self):
        with pytest.raises(NetlistError):
            Pwl([(1.0, 0.0), (0.5, 1.0)])


class TestMakeStimulus:
    def test_number_becomes_dc(self):
        src = make_stimulus(3.3)
        assert isinstance(src, Dc)
        assert src.value == 3.3

    def test_stimulus_passes_through(self):
        p = Pulse(0, 1)
        assert make_stimulus(p) is p

    def test_rejects_garbage(self):
        with pytest.raises(NetlistError):
            make_stimulus("not a stimulus")
