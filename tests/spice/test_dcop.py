"""DC operating-point tests against hand-computable circuits."""

import pytest

from repro.spice import Circuit, MosfetParams, operating_point
from repro.spice.errors import NetlistError


class TestLinear:
    def test_voltage_divider(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", 12.0)
        c.add_resistor("R1", "in", "mid", 3e3)
        c.add_resistor("R2", "mid", "0", 1e3)
        op = operating_point(c)
        assert op["mid"] == pytest.approx(3.0, rel=1e-6)

    def test_source_branch_current_reported(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", 10.0)
        c.add_resistor("R1", "in", "0", 2e3)
        op = operating_point(c)
        # MNA convention: branch current flows p -> n through the source,
        # so a sourcing supply shows a negative branch current.
        assert op["i(V1)"] == pytest.approx(-5e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add_isource("I1", "0", "out", 1e-3)  # pushes 1 mA into out
        c.add_resistor("R1", "out", "0", 1e3)
        op = operating_point(c)
        assert op["out"] == pytest.approx(1.0, rel=1e-6)

    def test_two_sources_superposition(self):
        c = Circuit()
        c.add_vsource("V1", "a", "0", 2.0)
        c.add_vsource("V2", "b", "0", 4.0)
        c.add_resistor("R1", "a", "x", 1e3)
        c.add_resistor("R2", "b", "x", 1e3)
        c.add_resistor("R3", "x", "0", 1e3)
        op = operating_point(c)
        assert op["x"] == pytest.approx(2.0, rel=1e-6)

    def test_floating_node_pulled_by_gmin(self):
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "c", 1e-12)  # c floats at DC
        op = operating_point(c)
        assert abs(op["c"]) < 1.0  # finite thanks to gmin

    def test_empty_circuit_raises(self):
        with pytest.raises(NetlistError):
            operating_point(Circuit())


class TestCmosInverterDc:
    @pytest.fixture()
    def inverter(self):
        def build(vin):
            pn = MosfetParams(kp=120e-6, vt=0.5, lam=0.05)
            pp = MosfetParams(kp=40e-6, vt=0.55, lam=0.05)
            c = Circuit()
            c.add_vsource("VDD", "vdd", "0", 2.5)
            c.add_vsource("VIN", "a", "0", vin)
            c.add_nmos("MN", "y", "a", "0", "0", 1e-6, 0.25e-6, pn)
            c.add_pmos("MP", "y", "a", "vdd", "vdd", 3e-6, 0.25e-6, pp)
            return c
        return build

    def test_output_high_for_low_input(self, inverter):
        op = operating_point(inverter(0.0))
        assert op["y"] == pytest.approx(2.5, abs=1e-3)

    def test_output_low_for_high_input(self, inverter):
        op = operating_point(inverter(2.5))
        assert op["y"] == pytest.approx(0.0, abs=1e-3)

    def test_transfer_is_monotone_decreasing(self, inverter):
        outs = [operating_point(inverter(v))["y"]
                for v in [0.0, 0.5, 1.0, 1.25, 1.5, 2.0, 2.5]]
        assert all(b <= a + 1e-6 for a, b in zip(outs, outs[1:]))

    def test_switching_region_near_midpoint(self, inverter):
        mid = operating_point(inverter(1.25))["y"]
        assert 0.05 < mid < 2.45  # neither rail: both devices on


class TestNmosStack:
    def test_resistor_loaded_nmos_pulldown(self):
        """Triode pull-down against a 10k load: output near ground."""
        c = Circuit()
        p = MosfetParams(kp=120e-6, vt=0.5, lam=0.0)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VG", "g", "0", 2.5)
        c.add_resistor("RL", "vdd", "d", 10e3)
        c.add_nmos("M1", "d", "g", "0", "0", 2e-6, 0.25e-6, p)
        op = operating_point(c)
        assert op["d"] < 0.25

    def test_off_device_output_at_rail(self):
        c = Circuit()
        p = MosfetParams(kp=120e-6, vt=0.5, lam=0.0)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VG", "g", "0", 0.0)
        c.add_resistor("RL", "vdd", "d", 10e3)
        c.add_nmos("M1", "d", "g", "0", "0", 2e-6, 0.25e-6, p)
        op = operating_point(c)
        assert op["d"] == pytest.approx(2.5, abs=1e-3)
