"""Element construction and rewiring tests."""

import pytest

from repro.spice import (Capacitor, CurrentSource, Dc, Resistor,
                         VoltageSource)
from repro.spice.errors import NetlistError


class TestResistor:
    def test_stores_terminals_in_order(self):
        r = Resistor("R1", "a", "b", 100.0)
        assert r.nodes() == ["a", "b"]

    def test_conductance(self):
        r = Resistor("R1", "a", "b", 200.0)
        assert r.conductance == pytest.approx(0.005)

    def test_rejects_zero_resistance(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", 0.0)

    def test_rejects_negative_resistance(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", -5.0)

    def test_rejects_empty_name(self):
        with pytest.raises(NetlistError):
            Resistor("", "a", "b", 1.0)


class TestCapacitor:
    def test_allows_zero_capacitance(self):
        c = Capacitor("C1", "a", "0", 0.0)
        assert c.capacitance == 0.0

    def test_rejects_negative_capacitance(self):
        with pytest.raises(NetlistError):
            Capacitor("C1", "a", "0", -1e-12)

    def test_initial_condition_optional(self):
        assert Capacitor("C1", "a", "0", 1e-12).ic is None
        assert Capacitor("C2", "a", "0", 1e-12, ic=1.5).ic == 1.5


class TestSources:
    def test_voltage_source_coerces_number(self):
        v = VoltageSource("V1", "p", "0", 5.0)
        assert isinstance(v.stimulus, Dc)

    def test_current_source_coerces_number(self):
        i = CurrentSource("I1", "p", "0", 1e-3)
        assert i.stimulus.value_at(0.0) == pytest.approx(1e-3)


class TestRewiring:
    def test_rewire_by_label(self):
        r = Resistor("R1", "a", "b", 1.0)
        r.rewire("p", "c")
        assert r.node("p") == "c"
        assert r.node("n") == "b"

    def test_rewire_unknown_label_raises(self):
        r = Resistor("R1", "a", "b", 1.0)
        with pytest.raises(NetlistError):
            r.rewire("x", "c")

    def test_rewire_node_hits_all_matching_terminals(self):
        r = Resistor("R1", "a", "a", 1.0)
        hits = r.rewire_node("a", "b")
        assert hits == 2
        assert r.nodes() == ["b", "b"]

    def test_rewire_node_miss_returns_zero(self):
        r = Resistor("R1", "a", "b", 1.0)
        assert r.rewire_node("zzz", "c") == 0

    def test_wrong_terminal_count_raises(self):
        from repro.spice.elements import TwoTerminal
        with pytest.raises(NetlistError):
            TwoTerminal("X1", "a")  # needs two nodes
        with pytest.raises(NetlistError):
            TwoTerminal("X1", "a", "b", "c")
