"""Factorization-reuse solver: equivalence, counters and fallbacks.

The ``reuse`` solver must be a pure performance optimisation: every
waveform it produces has to match the ``exact`` per-iteration-refactor
reference within the engine equivalence tolerance, and when anything
goes wrong (singular refactor, stalled reuse iteration) it must fall
back to the exact path rather than degrade the result.
"""

import numpy as np
import pytest

from repro.cells import build_path
from repro.montecarlo import sample_population
from repro.core.pulse import build_instance
from repro.runtime import SolverStats, stats_scope
from repro.spice import run_transient, run_transient_batch
from repro.spice.batch import BatchCompiledCircuit
from repro.spice.errors import ConvergenceError
from repro.spice.mna import (DEFAULT_SOLVER, SOLVER_EXACT, SOLVER_REUSE,
                             _COMPANION_CACHE_MAX, CompiledCircuit,
                             NewtonState, newton_solve,
                             resolve_solver_mode, scipy_available)
from repro.spice.transient import TRAPEZOIDAL

pytestmark = pytest.mark.skipif(not scipy_available(),
                                reason="scipy not installed")

DT = 4e-12
TSTOP = 1.2e-9


def _inverter_chain(n_gates=3, w_in=0.15e-9):
    path = build_path(gate_kinds=("inv",) * n_gates)
    path.set_input_pulse(w_in)
    return path


class TestResolveSolverMode:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        assert resolve_solver_mode(None) == DEFAULT_SOLVER

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "exact")
        assert resolve_solver_mode(None) == SOLVER_EXACT

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "exact")
        assert resolve_solver_mode("reuse") == SOLVER_REUSE

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            resolve_solver_mode("bogus")

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "turbo")
        with pytest.raises(ValueError):
            resolve_solver_mode(None)


class TestScalarEquivalence:
    def test_fixed_grid_waveform_matches_exact(self):
        path = _inverter_chain()
        exact = run_transient(path.circuit, TSTOP, DT, solver="exact")
        path2 = _inverter_chain()
        reuse = run_transient(path2.circuit, TSTOP, DT, solver="reuse")
        assert np.array_equal(exact.t, reuse.t)
        worst = max(np.abs(exact[n] - reuse[n]).max()
                    for n in exact.signals)
        assert worst <= 1e-6

    def test_adaptive_measurements_match_exact(self):
        """Adaptive grids drift at float level between solver modes, so
        the equivalence contract is on the measurements."""
        from repro.core.pulse import measure_output_pulse
        w_exact, _ = measure_output_pulse(
            _inverter_chain(), 0.15e-9, adaptive=True)
        with pytest.MonkeyPatch.context() as mp:
            mp.setenv("REPRO_SOLVER", "reuse")
            w_reuse, _ = measure_output_pulse(
                _inverter_chain(), 0.15e-9, adaptive=True)
        assert abs(w_exact - w_reuse) <= 0.1e-12

    def test_counters_show_reuse_and_bypass(self):
        path = _inverter_chain()
        stats = SolverStats()
        with stats_scope(stats):
            run_transient(path.circuit, TSTOP, DT, solver="reuse")
        snap = stats.snapshot()["counters"]
        assert snap["lu_factorizations"] >= 1
        assert snap["lu_reuses"] > snap["lu_factorizations"]
        assert snap["devices_bypassed"] > 0
        assert snap["bypass_forced_exact"] > 0

    def test_exact_mode_never_touches_reuse_counters(self):
        path = _inverter_chain()
        stats = SolverStats()
        with stats_scope(stats):
            run_transient(path.circuit, TSTOP, DT, solver="exact")
        snap = stats.snapshot()["counters"]
        assert snap["lu_factorizations"] == 0
        assert snap["lu_reuses"] == 0
        assert snap["devices_bypassed"] == 0
        assert snap["bypass_forced_exact"] == 0


class TestBatchEquivalence:
    def _population(self, n=4):
        samples = sample_population(n, base_seed=7)
        paths = [build_instance(sample=s, gate_kinds=("inv",) * 3)
                 for s in samples]
        for p in paths:
            p.set_input_pulse(0.15e-9)
        return paths

    def test_fixed_grid_matches_exact(self):
        circuits = [p.circuit for p in self._population()]
        exact = run_transient_batch(circuits, TSTOP, DT, solver="exact")
        circuits = [p.circuit for p in self._population()]
        reuse = run_transient_batch(circuits, TSTOP, DT, solver="reuse")
        worst = 0.0
        for we, wr in zip(exact, reuse):
            assert np.array_equal(we.t, wr.t)
            worst = max(worst, max(np.abs(we[n] - wr[n]).max()
                                   for n in we.signals))
        assert worst <= 1e-6

    def test_batch_matches_scalar_reuse(self):
        paths = self._population()
        batch_wfs = run_transient_batch([p.circuit for p in paths],
                                        TSTOP, DT, solver="reuse")
        for path, bwf in zip(self._population(), batch_wfs):
            swf = run_transient(path.circuit, TSTOP, DT, solver="reuse")
            worst = max(np.abs(swf[n] - bwf[n]).max()
                        for n in swf.signals)
            assert worst <= 1e-9

    def test_counters_show_reuse_and_bypass(self):
        circuits = [p.circuit for p in self._population()]
        stats = SolverStats()
        with stats_scope(stats):
            run_transient_batch(circuits, TSTOP, DT, solver="reuse")
        snap = stats.snapshot()["counters"]
        assert snap["lu_factorizations"] >= 1
        assert snap["lu_reuses"] > snap["lu_factorizations"]
        assert snap["devices_bypassed"] > 0


class TestCompanionBaseCache:
    def test_identity_is_stable(self):
        compiled = CompiledCircuit(_inverter_chain().circuit)
        a1 = compiled.companion_base(TRAPEZOIDAL, 1.0)
        a2 = compiled.companion_base(TRAPEZOIDAL, 1.0)
        assert a1 is a2

    def test_distinct_keys_distinct_matrices(self):
        compiled = CompiledCircuit(_inverter_chain().circuit)
        a1 = compiled.companion_base(TRAPEZOIDAL, 1.0)
        a2 = compiled.companion_base(TRAPEZOIDAL, 2.0)
        assert a1 is not a2
        assert not np.array_equal(a1, a2)

    def test_cached_matrix_is_read_only(self):
        compiled = CompiledCircuit(_inverter_chain().circuit)
        a1 = compiled.companion_base(TRAPEZOIDAL, 1.0)
        with pytest.raises(ValueError):
            a1[0, 0] = 123.0

    def test_lru_eviction_bounds_cache(self):
        compiled = CompiledCircuit(_inverter_chain().circuit)
        first = compiled.companion_base(TRAPEZOIDAL, 1.0)
        for i in range(_COMPANION_CACHE_MAX):
            compiled.companion_base(TRAPEZOIDAL, 2.0 + i)
        assert len(compiled._companion_cache) <= _COMPANION_CACHE_MAX
        # the first entry was the oldest: it has been evicted, so a
        # fresh request rebuilds a distinct object
        assert compiled.companion_base(TRAPEZOIDAL, 1.0) is not first

    def test_batch_identity_is_stable(self):
        paths = [_inverter_chain(), _inverter_chain()]
        batch = BatchCompiledCircuit([p.circuit for p in paths])
        a1 = batch.companion_base(TRAPEZOIDAL, 1.0)
        assert batch.companion_base(TRAPEZOIDAL, 1.0) is a1


class TestFallbacks:
    def test_reuse_falls_back_on_singular_system(self):
        """Two ideal sources fighting on one node is singular for the
        reuse path too; newton_solve must still raise cleanly."""
        from repro.spice import Circuit
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_vsource("V2", "a", "0", 2.0)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        state = NewtonState()
        with pytest.raises((ConvergenceError, np.linalg.LinAlgError)):
            newton_solve(compiled, compiled.a_static, rhs,
                         np.zeros(compiled.n), state=state)
        # the state must not retain a factorization of the bad matrix
        assert state.lu is None

    def test_reuse_solves_linear_system_exactly(self):
        from repro.spice import Circuit
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        x = newton_solve(compiled, compiled.a_static, rhs,
                         np.zeros(compiled.n), state=NewtonState())
        assert x[compiled.index_of("b")] == pytest.approx(0.5, abs=1e-9)

    def test_batch_fallback_rescues_unconverged_rows(self, monkeypatch):
        """If the reuse iteration gives up on some rows, the exact
        batch path must transparently re-solve them from x0."""
        import repro.spice.batch as batch_mod
        paths = [_inverter_chain(), _inverter_chain()]
        batch = BatchCompiledCircuit([p.circuit for p in paths])

        def hopeless(*args, **kwargs):
            x = np.asarray(args[3], dtype=float).copy()
            converged = np.zeros(x.shape[0], dtype=bool)
            return x, converged

        monkeypatch.setattr(batch_mod, "_newton_solve_batch_reuse",
                            hopeless)
        reuse_wfs = run_transient_batch(
            [p.circuit for p in paths], 0.2e-9, DT, solver="reuse")
        exact_wfs = run_transient_batch(
            [p.circuit for p in [_inverter_chain(), _inverter_chain()]],
            0.2e-9, DT, solver="exact")
        for rw, ew in zip(reuse_wfs, exact_wfs):
            worst = max(np.abs(rw[n] - ew[n]).max() for n in rw.signals)
            assert worst <= 1e-9
