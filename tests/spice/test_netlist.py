"""Circuit container tests, including the fault-injection primitives."""

import pytest

from repro.spice import Circuit, Resistor, is_ground
from repro.spice.errors import NetlistError
from repro.spice.mosfet import MosfetParams


@pytest.fixture()
def divider():
    c = Circuit("divider")
    c.add_vsource("V1", "in", "0", 1.0)
    c.add_resistor("R1", "in", "mid", 100.0)
    c.add_resistor("R2", "mid", "0", 100.0)
    return c


class TestGround:
    @pytest.mark.parametrize("name", ["0", "gnd", "GND", "vss", "VSS"])
    def test_ground_aliases(self, name):
        assert is_ground(name)

    def test_regular_node_is_not_ground(self):
        assert not is_ground("out")


class TestCircuitBasics:
    def test_nodes_excludes_ground(self, divider):
        assert divider.nodes() == ["in", "mid"]

    def test_len_counts_elements(self, divider):
        assert len(divider) == 3

    def test_duplicate_name_rejected(self, divider):
        with pytest.raises(NetlistError):
            divider.add_resistor("R1", "a", "b", 1.0)

    def test_element_lookup(self, divider):
        assert divider.element("R1").resistance == 100.0

    def test_missing_element_raises(self, divider):
        with pytest.raises(NetlistError):
            divider.element("R99")

    def test_remove_returns_element(self, divider):
        r = divider.remove("R2")
        assert r.name == "R2"
        assert "R2" not in divider

    def test_remove_missing_raises(self, divider):
        with pytest.raises(NetlistError):
            divider.remove("nope")

    def test_elements_filter_by_kind(self, divider):
        assert len(divider.elements(Resistor)) == 2

    def test_new_node_unique(self, divider):
        n1 = divider.new_node("x")
        divider.add_resistor("Rx", n1, "0", 1.0)
        n2 = divider.new_node("x")
        assert n1 != n2

    def test_new_name_unique(self, divider):
        name = divider.new_name("R1")
        assert name not in divider

    def test_only_elements_addable(self, divider):
        with pytest.raises(NetlistError):
            divider.add("not an element")


class TestCopy:
    def test_copy_is_independent(self, divider):
        clone = divider.copy()
        clone.element("R1").rewire("p", "elsewhere")
        assert divider.element("R1").node("p") == "in"

    def test_copy_preserves_values(self, divider):
        clone = divider.copy()
        assert clone.element("R2").resistance == 100.0
        assert len(clone) == len(divider)


class TestSeriesInsertion:
    def test_insert_series_resistor_breaks_terminal(self, divider):
        r_new = divider.insert_series_resistor("R2", "n", 50.0)
        r2 = divider.element("R2")
        assert r2.node("n") != "0"
        assert r_new.resistance == 50.0
        # new resistor joins the old node and the new node
        assert set(r_new.nodes()) == {"0", r2.node("n")}

    def test_insert_series_on_mosfet_source(self):
        c = Circuit()
        params = MosfetParams(kp=1e-4, vt=0.5)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_nmos("M1", "d", "g", "0", "0", 1e-6, 0.25e-6, params)
        c.insert_series_resistor("M1", "s", 1e3)
        assert c.element("M1").node("s") != "0"


class TestSplitNet:
    def test_split_moves_selected_sinks(self):
        c = Circuit()
        c.add_vsource("V1", "n1", "0", 1.0)
        c.add_resistor("Ra", "n1", "a", 1.0)
        c.add_resistor("Rb", "n1", "b", 1.0)
        far = c.split_net("n1", [("Rb", "p")], 500.0)
        assert c.element("Rb").node("p") == far
        assert c.element("Ra").node("p") == "n1"

    def test_split_rejects_wrong_terminal(self):
        c = Circuit()
        c.add_resistor("Ra", "n1", "a", 1.0)
        with pytest.raises(NetlistError):
            c.split_net("n1", [("Ra", "n")], 500.0)  # Ra:n is on 'a'

    def test_split_needs_sinks(self):
        c = Circuit()
        c.add_resistor("Ra", "n1", "a", 1.0)
        with pytest.raises(NetlistError):
            c.split_net("n1", [], 500.0)


class TestBridge:
    def test_bridge_connects_nets(self):
        c = Circuit()
        c.add_resistor("Ra", "x", "0", 1.0)
        c.add_resistor("Rb", "y", "0", 1.0)
        bridge = c.add_bridge("x", "y", 2e3)
        assert set(bridge.nodes()) == {"x", "y"}
        assert bridge.resistance == 2e3
