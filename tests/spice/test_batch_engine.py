"""Scalar-vs-batched engine equivalence and batch-lowering contracts.

The scalar transient engine is the reference implementation; the
lockstep engine must reproduce its waveforms within 1e-6 V on real
workloads.  These tests pin that contract on the delay-line bench
(fault-free population and a fault-resistance sweep) and check the
batched measurement helpers and Newton accounting.
"""

import math

import numpy as np
import pytest

from repro.core.pulse import (build_instance, measure_output_pulse,
                              measure_output_pulse_batch,
                              measure_path_delay, measure_path_delay_batch,
                              simulation_window)
from repro.faults import ExternalOpen, inject, set_fault_resistance
from repro.montecarlo import sample_population
from repro.spice import (BatchCompiledCircuit, BatchTransient, Circuit,
                         run_transient, run_transient_batch)
from repro.spice.errors import NetlistError
from repro.spice.mna import NEWTON_STATS

DT = 6e-12
W_IN = 0.40e-9


def _pulse_window(paths):
    delays = [path.set_input_pulse(W_IN, kind="h") for path in paths]
    return max(simulation_window(path, w_in=W_IN, stimulus_delay=delay)
               for path, delay in zip(paths, delays))


def _assert_waveforms_match(paths, tstop, tol=1e-6):
    """Batched waveforms match per-sample scalar runs within ``tol``."""
    record = [paths[0].input_node, paths[0].output_node]
    batched = run_transient_batch([p.circuit for p in paths], tstop, DT,
                                  record=record)
    worst = 0.0
    for path, wf_b in zip(paths, batched):
        wf_s = run_transient(path.circuit, tstop, DT, record=record)
        np.testing.assert_allclose(wf_b.t, wf_s.t)
        for node in record:
            worst = max(worst, np.abs(wf_b[node] - wf_s[node]).max())
    assert worst < tol, worst
    return worst


class TestWaveformEquivalence:
    def test_seeded_population_matches_scalar(self):
        """8-sample seeded population: lockstep == per-sample scalar."""
        samples = sample_population(8, base_seed=1)
        paths = [build_instance(sample=s) for s in samples]
        _assert_waveforms_match(paths, _pulse_window(paths))

    def test_fault_resistance_sweep_matches_scalar(self):
        """Delay line with an external open across resistances: the
        batch axis is the R sweep (identical topology, varying R)."""
        paths = []
        for r in (2e3, 8e3, 32e3):
            base = build_instance()
            paths.append(inject(base, ExternalOpen(2, r)))
        _assert_waveforms_match(paths, _pulse_window(paths))

    def test_singleton_batch_matches_scalar(self):
        paths = [build_instance()]
        _assert_waveforms_match(paths, _pulse_window(paths))


class TestBatchedMeasurements:
    def test_output_pulse_agrees(self):
        samples = sample_population(4, base_seed=3)
        paths = [build_instance(sample=s) for s in samples]
        w_batch, _ = measure_output_pulse_batch(paths, W_IN, dt=DT)
        for path, w_b in zip(paths, w_batch):
            w_s, _ = measure_output_pulse(path, W_IN, dt=DT)
            assert w_b == pytest.approx(w_s, abs=1e-12)

    def test_path_delay_agrees(self):
        samples = sample_population(4, base_seed=3)
        paths = [build_instance(sample=s) for s in samples]
        d_batch, _ = measure_path_delay_batch(paths, dt=DT)
        for path, d_b in zip(paths, d_batch):
            d_s, _ = measure_path_delay(path, dt=DT)
            assert d_b == pytest.approx(d_s, abs=1e-12)
        assert all(math.isfinite(d) for d in d_batch)


class TestNewtonAccounting:
    def test_stats_accumulate_per_sample(self):
        """Batch mode books one solve per sample per Newton call and at
        least one iteration per still-active sample."""
        samples = sample_population(4, base_seed=5)
        paths = [build_instance(sample=s) for s in samples]
        tstop = _pulse_window(paths)
        before = dict(NEWTON_STATS)
        run_transient_batch([p.circuit for p in paths], tstop, DT,
                            record=[paths[0].output_node])
        solves = NEWTON_STATS["solves"] - before["solves"]
        iterations = NEWTON_STATS["iterations"] - before["iterations"]
        n_steps = int(round(tstop / DT))
        # >= one batched Newton call (S solves) per time step + DC init
        assert solves >= len(paths) * n_steps
        assert iterations >= solves


class TestBatchLowering:
    def test_topology_mismatch_rejected(self):
        a = Circuit()
        a.add_vsource("V1", "in", "0", 1.0)
        a.add_resistor("R1", "in", "out", 1e3)
        a.add_capacitor("C1", "out", "0", 1e-15)
        b = Circuit()
        b.add_vsource("V1", "in", "0", 1.0)
        b.add_resistor("R1", "in", "out", 1e3)
        b.add_capacitor("C1", "out", "0", 1e-15)
        b.add_capacitor("C2", "in", "0", 1e-15)
        with pytest.raises(NetlistError):
            BatchCompiledCircuit([a, b])

    def test_empty_batch_rejected(self):
        with pytest.raises(NetlistError):
            BatchCompiledCircuit([])

    def test_x0_shape_validated(self):
        paths = [build_instance(), build_instance()]
        tstop = _pulse_window(paths)
        with pytest.raises(Exception):
            run_transient_batch([p.circuit for p in paths], tstop, DT,
                                x0=np.zeros(3))

    def test_batch_transient_tracks_mutation(self):
        """BatchTransient re-lowers each run, so in-place resistance
        edits (the sweep drivers' idiom) take effect."""
        paths = [inject(build_instance(), ExternalOpen(2, 2e3))
                 for _ in range(2)]
        tstop = _pulse_window(paths)
        runner = BatchTransient([p.circuit for p in paths])
        record = [paths[0].output_node]
        wf_lo = runner.run(tstop, DT, record=record)
        for path in paths:
            set_fault_resistance(path, 40e3)
        wf_hi = runner.run(tstop, DT, record=record)
        node = paths[0].output_node
        assert np.abs(wf_lo[0][node] - wf_hi[0][node]).max() > 0.1
