"""Level-1 MOSFET model tests: operating regions, symmetry, derivatives."""

import numpy as np
import pytest

from repro.spice.mosfet import Mosfet, MosfetParams, evaluate_level1
from repro.spice.errors import NetlistError

KP, VT, LAM = 120e-6, 0.5, 0.05
BETA = KP * 4.0  # W/L = 4


def nmos_current(vd, vg, vs):
    i, gm, gds, a_is_d = evaluate_level1(vd, vg, vs, 1.0, BETA, VT, LAM)
    return float(i), float(gm), float(gds), bool(a_is_d)


class TestRegions:
    def test_cutoff_zero_current(self):
        i, gm, gds, _ = nmos_current(2.0, 0.3, 0.0)
        assert i == 0.0
        assert gm == 0.0
        assert gds == 0.0

    def test_saturation_value(self):
        vgs, vds = 1.5, 2.0
        i, _, _, _ = nmos_current(vds, vgs, 0.0)
        vov = vgs - VT
        expected = 0.5 * BETA * vov ** 2 * (1 + LAM * vds)
        assert i == pytest.approx(expected, rel=1e-12)

    def test_triode_value(self):
        vgs, vds = 2.0, 0.4
        i, _, _, _ = nmos_current(vds, vgs, 0.0)
        vov = vgs - VT
        expected = BETA * (vov * vds - 0.5 * vds ** 2) * (1 + LAM * vds)
        assert i == pytest.approx(expected, rel=1e-12)

    def test_current_continuous_at_boundary(self):
        vgs = 1.5
        vov = vgs - VT
        below, _, _, _ = nmos_current(vov - 1e-9, vgs, 0.0)
        above, _, _, _ = nmos_current(vov + 1e-9, vgs, 0.0)
        assert below == pytest.approx(above, rel=1e-5)

    def test_gds_continuous_at_boundary(self):
        vgs = 1.5
        vov = vgs - VT
        _, _, gds_below, _ = nmos_current(vov - 1e-7, vgs, 0.0)
        _, _, gds_above, _ = nmos_current(vov + 1e-7, vgs, 0.0)
        assert gds_below == pytest.approx(gds_above, rel=1e-3)

    def test_current_monotone_in_vgs(self):
        currents = [nmos_current(2.0, vgs, 0.0)[0]
                    for vgs in np.linspace(0.0, 2.5, 20)]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_current_monotone_in_vds(self):
        currents = [nmos_current(vds, 2.0, 0.0)[0]
                    for vds in np.linspace(0.0, 2.5, 20)]
        assert all(b >= a - 1e-15 for a, b in zip(currents, currents[1:]))


class TestSymmetryAndPolarity:
    def test_source_drain_swap_antisymmetric(self):
        fwd, _, _, a_is_d = nmos_current(1.0, 2.0, 0.0)
        # Exchange drain and source terminals: the conducting terminal
        # pair swaps, the gate still sees the same overdrive relative to
        # the lower terminal, so |current| is unchanged.
        rev, _, _, a_is_d2 = nmos_current(0.0, 2.0, 1.0)
        assert a_is_d
        assert not a_is_d2
        assert fwd == pytest.approx(rev, rel=1e-9)

    def test_pmos_mirrors_nmos(self):
        i_n, gm_n, gds_n, _ = evaluate_level1(
            2.0, 1.5, 0.0, 1.0, BETA, VT, LAM)
        i_p, gm_p, gds_p, _ = evaluate_level1(
            -2.0, -1.5, 0.0, -1.0, BETA, VT, LAM)
        assert float(i_p) == pytest.approx(-float(i_n), rel=1e-12)
        assert float(gm_p) == pytest.approx(float(gm_n), rel=1e-12)
        assert float(gds_p) == pytest.approx(float(gds_n), rel=1e-12)

    def test_gm_matches_numeric_derivative(self):
        vgs, vds, h = 1.2, 2.0, 1e-6
        _, gm, _, _ = nmos_current(vds, vgs, 0.0)
        i_hi, _, _, _ = nmos_current(vds, vgs + h, 0.0)
        i_lo, _, _, _ = nmos_current(vds, vgs - h, 0.0)
        assert gm == pytest.approx((i_hi - i_lo) / (2 * h), rel=1e-4)

    def test_gds_matches_numeric_derivative_triode(self):
        vgs, vds, h = 2.0, 0.5, 1e-6
        _, _, gds, _ = nmos_current(vds, vgs, 0.0)
        i_hi, _, _, _ = nmos_current(vds + h, vgs, 0.0)
        i_lo, _, _, _ = nmos_current(vds - h, vgs, 0.0)
        assert gds == pytest.approx((i_hi - i_lo) / (2 * h), rel=1e-4)


class TestParams:
    def test_rejects_bad_kp(self):
        with pytest.raises(NetlistError):
            MosfetParams(kp=0.0, vt=0.5)

    def test_rejects_bad_vt(self):
        with pytest.raises(NetlistError):
            MosfetParams(kp=1e-4, vt=-0.1)

    def test_copy_is_independent(self):
        p = MosfetParams(kp=1e-4, vt=0.5, cgs=1e-15)
        q = p.copy()
        q.cgs = 9e-15
        assert p.cgs == 1e-15


class TestMosfetElement:
    def test_beta_scales_with_geometry(self):
        p = MosfetParams(kp=KP, vt=VT)
        m = Mosfet("M1", "d", "g", "s", "b", "nmos", 2e-6, 0.5e-6, p)
        assert m.beta == pytest.approx(KP * 4.0)

    def test_sign_per_polarity(self):
        p = MosfetParams(kp=KP, vt=VT)
        n = Mosfet("Mn", "d", "g", "s", "b", "nmos", 1e-6, 1e-6, p)
        q = Mosfet("Mp", "d", "g", "s", "b", "pmos", 1e-6, 1e-6, p)
        assert n.sign == 1.0
        assert q.sign == -1.0

    def test_rejects_unknown_polarity(self):
        p = MosfetParams(kp=KP, vt=VT)
        with pytest.raises(NetlistError):
            Mosfet("M1", "d", "g", "s", "b", "npn", 1e-6, 1e-6, p)

    def test_intrinsic_caps_skip_zero(self):
        p = MosfetParams(kp=KP, vt=VT, cgs=1e-15, cgd=0.0, cdb=2e-15)
        m = Mosfet("M1", "d", "g", "s", "b", "nmos", 1e-6, 1e-6, p)
        caps = m.intrinsic_capacitors()
        suffixes = [c[0] for c in caps]
        assert "cgs" in suffixes
        assert "cgd" not in suffixes
        assert "cdb" in suffixes

    def test_intrinsic_caps_reference_terminals(self):
        p = MosfetParams(kp=KP, vt=VT, cgs=1e-15)
        m = Mosfet("M1", "nd", "ng", "ns", "nb", "nmos", 1e-6, 1e-6, p)
        suffix, a, b, value = m.intrinsic_capacitors()[0]
        assert (a, b) == ("ng", "ns")
