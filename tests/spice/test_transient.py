"""Transient analysis against closed-form RC/RL-style responses."""

import numpy as np
import pytest

from repro.spice import (Circuit, MosfetParams, Pulse, Pwl, run_transient,
                         BACKWARD_EULER, TRAPEZOIDAL)
from repro.spice.errors import AnalysisError


def rc_circuit(r=1e3, c=1e-9):
    circuit = Circuit("rc")
    circuit.add_vsource(
        "V1", "in", "0", Pulse(0.0, 1.0, delay=0.0, rise=1e-12, width=1.0))
    circuit.add_resistor("R1", "in", "out", r)
    circuit.add_capacitor("C1", "out", "0", c)
    return circuit


class TestRcStep:
    def test_value_at_one_tau(self):
        wf = run_transient(rc_circuit(), 5e-6, 1e-8)
        assert wf.value_at("out", 1e-6) == pytest.approx(
            1 - np.exp(-1), abs=0.01)

    def test_value_at_three_tau(self):
        wf = run_transient(rc_circuit(), 5e-6, 1e-8)
        assert wf.value_at("out", 3e-6) == pytest.approx(
            1 - np.exp(-3), abs=0.01)

    def test_backward_euler_close_to_trap(self):
        wf_be = run_transient(rc_circuit(), 3e-6, 5e-9,
                              method=BACKWARD_EULER)
        wf_tr = run_transient(rc_circuit(), 3e-6, 5e-9,
                              method=TRAPEZOIDAL)
        assert wf_be.value_at("out", 1e-6) == pytest.approx(
            wf_tr.value_at("out", 1e-6), abs=0.01)

    def test_starts_from_dc_solution(self):
        wf = run_transient(rc_circuit(), 1e-6, 1e-8)
        assert wf["out"][0] == pytest.approx(0.0, abs=1e-6)

    def test_trapezoidal_converges_second_order(self):
        """Halving dt shrinks trapezoidal error ~4x (ramp input whose
        corners land exactly on both step grids, so only the integrator
        error remains)."""
        tau, ramp = 1e-6, 2e-7

        def exact(t):
            v_ramp_end = (ramp - tau * (1 - np.exp(-ramp / tau))) / ramp
            return 1 + (v_ramp_end - 1) * np.exp(-(t - ramp) / tau)

        errors = []
        for dt in (4e-8, 2e-8):
            c = Circuit("rc-ramp")
            c.add_vsource("V1", "in", "0", Pwl([(0, 0), (ramp, 1.0)]))
            c.add_resistor("R1", "in", "out", 1e3)
            c.add_capacitor("C1", "out", "0", 1e-9)
            wf = run_transient(c, 2e-6, dt)
            errors.append(abs(wf.value_at("out", 1.2e-6) - exact(1.2e-6)))
        if errors[1] > 1e-12:
            assert errors[0] / errors[1] > 2.5


class TestRcDischargeAndDividers:
    def test_cap_divider_ac_coupling(self):
        """Two series caps divide a fast step by the capacitance ratio."""
        c = Circuit()
        c.add_vsource("V1", "in", "0",
                      Pulse(0.0, 2.0, delay=1e-9, rise=1e-11, width=1.0))
        c.add_capacitor("C1", "in", "mid", 1e-12)
        c.add_capacitor("C2", "mid", "0", 3e-12)
        wf = run_transient(c, 4e-9, 1e-12)
        assert wf.value_at("mid", 2e-9) == pytest.approx(0.5, abs=0.05)

    def test_pwl_driven_ramp(self):
        c = Circuit()
        c.add_vsource("V1", "in", "0", Pwl([(0, 0), (1e-6, 1.0)]))
        c.add_resistor("R1", "in", "out", 1.0)  # negligible
        c.add_capacitor("C1", "out", "0", 1e-15)
        wf = run_transient(c, 1e-6, 1e-8)
        assert wf.value_at("in", 0.5e-6) == pytest.approx(0.5, abs=0.01)


class TestArguments:
    def test_rejects_bad_tstop(self):
        with pytest.raises(AnalysisError):
            run_transient(rc_circuit(), -1.0, 1e-9)

    def test_rejects_bad_dt(self):
        with pytest.raises(AnalysisError):
            run_transient(rc_circuit(), 1e-6, 0.0)

    def test_rejects_unknown_method(self):
        with pytest.raises(AnalysisError):
            run_transient(rc_circuit(), 1e-6, 1e-9, method="gear2")

    def test_record_subset(self):
        wf = run_transient(rc_circuit(), 1e-7, 1e-9, record=["out"])
        assert wf.nodes() == ["out"]

    def test_rejects_wrong_x0_shape(self):
        with pytest.raises(AnalysisError):
            run_transient(rc_circuit(), 1e-7, 1e-9, x0=np.zeros(99))


class TestStepCountCoversTstop:
    """Regression: ``int(round(tstop / dt))`` clipped the grid short of
    ``tstop`` for non-commensurate ratios (tstop/dt = 100.4 rounded to
    100 steps, losing the last 4 ns of a 1.004 us window — and with it
    the tail of any output pulse)."""

    def test_scalar_grid_reaches_tstop(self):
        tstop, dt = 1.004e-6, 1e-8
        wf = run_transient(rc_circuit(), tstop, dt)
        assert wf.t[-1] >= tstop * (1 - 1e-12)

    def test_batch_grid_reaches_tstop(self):
        from repro.spice import run_transient_batch

        tstop, dt = 1.004e-6, 1e-8
        wfs = run_transient_batch([rc_circuit()], tstop, dt)
        assert wfs[0].t[-1] >= tstop * (1 - 1e-12)

    def test_commensurate_grid_unchanged(self):
        """Exact-integer ratios keep the historical grid (no extra
        step from ceiling float dust)."""
        wf = run_transient(rc_circuit(), 1e-6, 1e-8)
        assert len(wf.t) == 101
        assert wf.t[-1] == pytest.approx(1e-6, rel=1e-12)

    def test_tail_pulse_not_clipped(self):
        """A pulse ending right at tstop keeps its falling edge."""
        c = Circuit()
        c.add_vsource("V1", "in", "0",
                      Pulse(0.0, 1.0, delay=0.4e-6, rise=1e-9,
                            width=0.55e-6, fall=1e-9))
        c.add_resistor("R1", "in", "out", 1.0)
        c.add_capacitor("C1", "out", "0", 1e-15)
        wf = run_transient(c, 1.004e-6, 1e-8)
        # the grid must still see the ~0.96us falling edge region
        assert wf.value_at("in", 1.004e-6) < 1.0


class TestInverterTransient:
    @pytest.fixture()
    def inverter(self):
        c = Circuit()
        pn = MosfetParams(kp=120e-6, vt=0.5, lam=0.05, cgs=2e-15,
                          cgd=1e-15, cdb=2e-15)
        pp = MosfetParams(kp=40e-6, vt=0.55, lam=0.05, cgs=5e-15,
                          cgd=2e-15, cdb=4e-15)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VIN", "a", "0",
                      Pulse(0.0, 2.5, delay=0.2e-9, rise=5e-11,
                            width=1.2e-9, fall=5e-11))
        c.add_nmos("MN", "y", "a", "0", "0", 1e-6, 0.25e-6, pn)
        c.add_pmos("MP", "y", "a", "vdd", "vdd", 2.5e-6, 0.25e-6, pp)
        c.add_capacitor("CL", "y", "0", 20e-15)
        return c

    def test_output_inverts_input(self, inverter):
        wf = run_transient(inverter, 3e-9, 4e-12)
        assert wf.value_at("y", 0.1e-9) > 2.3   # input low -> out high
        assert wf.value_at("y", 1.0e-9) < 0.2   # input high -> out low

    def test_finite_propagation_delay(self, inverter):
        wf = run_transient(inverter, 3e-9, 4e-12)
        d = wf.propagation_delay("a", "y", 1.25, in_direction="rise",
                                 out_direction="fall")
        assert d is not None
        assert 5e-12 < d < 300e-12

    def test_output_pulse_width_tracks_input(self, inverter):
        wf = run_transient(inverter, 3e-9, 4e-12)
        w_in = wf.widest_pulse("a", 1.25, polarity="high")
        w_out = wf.widest_pulse("y", 1.25, polarity="low")
        assert w_out == pytest.approx(w_in, rel=0.15)
