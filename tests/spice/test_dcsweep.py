"""DC sweep tests."""

import numpy as np
import pytest

from repro.spice import Circuit, MosfetParams, Pulse, dc_sweep
from repro.spice.errors import AnalysisError


def divider():
    c = Circuit()
    c.add_vsource("V1", "in", "0", 1.0)
    c.add_resistor("R1", "in", "mid", 1e3)
    c.add_resistor("R2", "mid", "0", 1e3)
    return c


class TestLinearSweep:
    def test_divider_tracks_source(self):
        result = dc_sweep(divider(), "V1", [0.0, 1.0, 2.0, 4.0])
        assert np.allclose(result["mid"], [0.0, 0.5, 1.0, 2.0],
                           atol=1e-6)

    def test_record_subset(self):
        result = dc_sweep(divider(), "V1", [1.0], record=["mid"])
        assert result.nodes() == ["mid"]

    def test_stimulus_restored(self):
        c = divider()
        original = c.element("V1").stimulus
        dc_sweep(c, "V1", [5.0])
        assert c.element("V1").stimulus is original

    def test_stimulus_restored_on_sweep_of_pulse_source(self):
        c = divider()
        c.element("V1").stimulus = Pulse(0, 1)
        original = c.element("V1").stimulus
        dc_sweep(c, "V1", [0.5])
        assert c.element("V1").stimulus is original

    def test_rejects_non_source(self):
        with pytest.raises(AnalysisError):
            dc_sweep(divider(), "R1", [1.0])

    def test_rejects_empty_values(self):
        with pytest.raises(AnalysisError):
            dc_sweep(divider(), "V1", [])

    def test_missing_node_rejected(self):
        result = dc_sweep(divider(), "V1", [1.0])
        with pytest.raises(AnalysisError):
            result["nope"]


class TestVtcSweep:
    @pytest.fixture()
    def inverter(self):
        c = Circuit()
        pn = MosfetParams(kp=120e-6, vt=0.5, lam=0.05)
        pp = MosfetParams(kp=40e-6, vt=0.55, lam=0.05)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VIN", "a", "0", 0.0)
        c.add_nmos("MN", "y", "a", "0", "0", 1e-6, 0.25e-6, pn)
        c.add_pmos("MP", "y", "a", "vdd", "vdd", 2.5e-6, 0.25e-6, pp)
        return c

    def test_vtc_monotone_decreasing(self, inverter):
        vin = np.linspace(0, 2.5, 26)
        result = dc_sweep(inverter, "VIN", vin, record=["y"])
        y = result["y"]
        assert all(b <= a + 1e-6 for a, b in zip(y, y[1:]))

    def test_switching_threshold_via_crossing(self, inverter):
        vin = np.linspace(0, 2.5, 51)
        result = dc_sweep(inverter, "VIN", vin, record=["y"])
        vm = result.crossing("y", 1.25)
        assert vm is not None
        assert 0.8 < vm < 1.7

    def test_crossing_none_when_flat(self):
        result = dc_sweep(divider(), "V1", [1.0, 1.1, 1.2],
                          record=["mid"])
        assert result.crossing("mid", 5.0) is None
