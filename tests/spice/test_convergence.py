"""Solver robustness and failure-path tests."""

import numpy as np
import pytest

from repro.spice import Circuit, MosfetParams, Pulse, run_transient
from repro.spice.errors import ConvergenceError
from repro.spice.mna import (CompiledCircuit, gmin_continuation_solve,
                             newton_solve)
from repro.spice.dcop import solve_dc


class TestNewtonEdgeCases:
    def test_singular_system_raises(self):
        """Two ideal sources fighting on one node -> singular matrix."""
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_vsource("V2", "a", "0", 2.0)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        with pytest.raises((ConvergenceError, np.linalg.LinAlgError)):
            newton_solve(compiled, compiled.a_static, rhs,
                         np.zeros(compiled.n))

    def test_iteration_limit_raises(self):
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        # an absurd damping value forces tiny steps -> iteration cap
        with pytest.raises(ConvergenceError):
            newton_solve(compiled, compiled.a_static, rhs,
                         np.zeros(compiled.n) + 100.0, damping=1e-9,
                         max_iter=5)

    def test_error_carries_context(self):
        err = ConvergenceError("x", iterations=7, residual=0.5, time=1e-9)
        assert err.iterations == 7
        assert err.residual == 0.5
        assert err.time == 1e-9

    def test_failure_reports_undamped_step(self):
        """The error's residual is the true pre-damping Newton step.

        The damped value used to be reported instead, which made every
        diverging solve look like it stopped exactly at the damping
        clamp — useless for trace consumers sizing the divergence.
        """
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        with pytest.raises(ConvergenceError) as info:
            newton_solve(compiled, compiled.a_static, rhs,
                         np.zeros(compiled.n) + 100.0, damping=1e-9,
                         max_iter=5)
        # starting 100 V from the (linear) solution with a 1e-9 clamp,
        # the raw Newton step stays ~100 V — that is what must surface
        assert info.value.residual > 50.0
        assert info.value.iterations == 5

    def test_zero_iteration_budget_reports_cleanly(self):
        """max_iter=0 never enters the loop; the failure must still
        carry a well-defined residual instead of crashing."""
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "0", 1e3)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        with pytest.raises(ConvergenceError) as info:
            newton_solve(compiled, compiled.a_static, rhs,
                         np.zeros(compiled.n), max_iter=0)
        assert info.value.residual == 0.0


class TestGminStepping:
    def test_back_to_back_inverters_converge(self):
        """A bistable latch has three DC solutions; gmin-stepped Newton
        must settle on one without diverging."""
        c = Circuit()
        pn = MosfetParams(kp=120e-6, vt=0.5, lam=0.06)
        pp = MosfetParams(kp=40e-6, vt=0.55, lam=0.08)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        for name, a, y in (("u1", "q", "qb"), ("u2", "qb", "q")):
            c.add_nmos(name + "n", y, a, "0", "0", 1e-6, 0.25e-6, pn)
            c.add_pmos(name + "p", y, a, "vdd", "vdd", 2.5e-6,
                       0.25e-6, pp)
        compiled = CompiledCircuit(c)
        x = solve_dc(compiled)
        assert np.all(np.isfinite(x))
        assert np.abs(x[:compiled.n_nodes]).max() <= 2.6

    def test_large_stack_converges(self):
        """A 12-high series NMOS stack stresses the continuation path."""
        c = Circuit()
        p = MosfetParams(kp=120e-6, vt=0.5, lam=0.06)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VG", "g", "0", 2.5)
        c.add_resistor("RL", "vdd", "n0", 5e3)
        for i in range(12):
            c.add_nmos("M{}".format(i), "n{}".format(i), "g",
                       "n{}".format(i + 1) if i < 11 else "0", "0",
                       1e-6, 0.25e-6, p)
        from repro.spice import operating_point
        op = operating_point(c)
        # the stack conducts (n0 pulled visibly below the rail) and the
        # node voltages decrease monotonically toward ground
        assert op["n0"] < 2.4
        chain = [op["n{}".format(i)] for i in range(12)]
        assert all(a > b for a, b in zip(chain, chain[1:]))


class TestGminContinuationRetry:
    """The transient retry ladder must survive failing rungs.

    Historically the per-step retry made exactly one heavier-gmin
    attempt, so a *second* failure aborted the whole transient.  The
    ladder now skips failed rungs and only the final target-gmin solve
    may propagate.
    """

    @staticmethod
    def _divider():
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        return compiled, rhs

    def test_ladder_skips_failing_rungs(self, monkeypatch):
        """Every rung heavier than 1e-10 fails; the ladder must still
        reach the target instead of aborting on the second failure."""
        import repro.spice.mna as mna

        real = newton_solve
        attempts = []

        def flaky(compiled, a_base, rhs_base, x0, gmin=1e-12, **kwargs):
            attempts.append(gmin)
            if gmin > 1e-10:
                raise ConvergenceError("forced rung failure")
            return real(compiled, a_base, rhs_base, x0, gmin=gmin,
                        **kwargs)

        monkeypatch.setattr(mna, "newton_solve", flaky)
        compiled, rhs = self._divider()
        x = gmin_continuation_solve(compiled, compiled.a_static, rhs,
                                    np.zeros(compiled.n))
        assert x[compiled.index_of("b")] == pytest.approx(0.5, abs=1e-6)
        # more than two rungs were attempted before one succeeded
        assert sum(1 for g in attempts if g > 1e-10) >= 2

    def test_final_rung_failure_propagates(self, monkeypatch):
        import repro.spice.mna as mna

        def hopeless(*args, **kwargs):
            raise ConvergenceError("never converges")

        monkeypatch.setattr(mna, "newton_solve", hopeless)
        compiled, rhs = self._divider()
        with pytest.raises(ConvergenceError):
            gmin_continuation_solve(compiled, compiled.a_static, rhs,
                                    np.zeros(compiled.n))

    def test_transient_survives_double_failure_at_switching_instant(
            self, monkeypatch):
        """A hard switching instant where plain Newton fails *and* the
        ladder's first rungs fail must not abort run_transient."""
        import repro.spice.mna as mna
        import repro.spice.transient as transient

        c = Circuit()
        pn = MosfetParams(kp=120e-6, vt=0.5, lam=0.06, cgs=2e-15)
        pp = MosfetParams(kp=40e-6, vt=0.55, lam=0.08, cgs=5e-15)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VIN", "a", "0",
                      Pulse(0, 2.5, delay=50e-12, rise=2e-12, width=1.0))
        c.add_nmos("MN", "y", "a", "0", "0", 1e-6, 0.25e-6, pn)
        c.add_pmos("MP", "y", "a", "vdd", "vdd", 2.5e-6, 0.25e-6, pp)
        c.add_capacitor("CL", "y", "0", 20e-15)

        reference = run_transient(c, 0.3e-9, 2e-12, record=["y"])

        real = newton_solve
        forced = {"direct": 0}

        def fail_mid_edge(compiled, a_base, rhs_base, x0, gmin=1e-12,
                          **kwargs):
            # the direct per-step solve fails once, mid input edge
            t = kwargs.get("time")
            if (t is not None and forced["direct"] == 0
                    and t >= 51e-12):
                forced["direct"] += 1
                raise ConvergenceError("forced step failure", time=t)
            return real(compiled, a_base, rhs_base, x0, gmin=gmin,
                        **kwargs)

        def fail_heavy_rungs(compiled, a_base, rhs_base, x0, gmin=1e-12,
                             **kwargs):
            # the retry ladder's heavy rungs fail too (the old "second
            # failure" that aborted the run)
            if gmin > 1e-6:
                raise ConvergenceError("forced rung failure")
            return real(compiled, a_base, rhs_base, x0, gmin=gmin,
                        **kwargs)

        monkeypatch.setattr(transient, "newton_solve", fail_mid_edge)
        monkeypatch.setattr(mna, "newton_solve", fail_heavy_rungs)
        wf = run_transient(c, 0.3e-9, 2e-12, record=["y"])
        assert forced["direct"] == 1
        assert np.abs(wf["y"] - reference["y"]).max() < 1e-4


class TestTransientRobustness:
    def test_fast_edge_into_stiff_load(self):
        """A 1 ps edge into a tiny RC must not blow up the integrator."""
        c = Circuit()
        c.add_vsource("V1", "in", "0",
                      Pulse(0, 2.5, delay=50e-12, rise=1e-12, width=1.0))
        c.add_resistor("R1", "in", "out", 10.0)
        c.add_capacitor("C1", "out", "0", 1e-16)
        wf = run_transient(c, 0.5e-9, 2e-12)
        assert np.all(np.isfinite(wf["out"]))
        assert wf.value_at("out", 0.4e-9) == pytest.approx(2.5, abs=0.05)

    def test_long_idle_window_stays_quiet(self):
        """No spurious drift on a quiescent CMOS stage over 20 ns."""
        c = Circuit()
        pn = MosfetParams(kp=120e-6, vt=0.5, lam=0.06, cgs=2e-15,
                          cdb=2e-15)
        pp = MosfetParams(kp=40e-6, vt=0.55, lam=0.08, cgs=5e-15,
                          cdb=4e-15)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VIN", "a", "0", 0.0)
        c.add_nmos("MN", "y", "a", "0", "0", 1e-6, 0.25e-6, pn)
        c.add_pmos("MP", "y", "a", "vdd", "vdd", 2.5e-6, 0.25e-6, pp)
        c.add_capacitor("CL", "y", "0", 20e-15)
        wf = run_transient(c, 20e-9, 20e-12, record=["y"])
        assert wf["y"].min() > 2.4
        assert wf["y"].max() < 2.6
