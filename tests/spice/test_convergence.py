"""Solver robustness and failure-path tests."""

import numpy as np
import pytest

from repro.spice import Circuit, MosfetParams, Pulse, run_transient
from repro.spice.errors import ConvergenceError
from repro.spice.mna import CompiledCircuit, newton_solve
from repro.spice.dcop import solve_dc


class TestNewtonEdgeCases:
    def test_singular_system_raises(self):
        """Two ideal sources fighting on one node -> singular matrix."""
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_vsource("V2", "a", "0", 2.0)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        with pytest.raises((ConvergenceError, np.linalg.LinAlgError)):
            newton_solve(compiled, compiled.a_static, rhs,
                         np.zeros(compiled.n))

    def test_iteration_limit_raises(self):
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        # an absurd damping value forces tiny steps -> iteration cap
        with pytest.raises(ConvergenceError):
            newton_solve(compiled, compiled.a_static, rhs,
                         np.zeros(compiled.n) + 100.0, damping=1e-9,
                         max_iter=5)

    def test_error_carries_context(self):
        err = ConvergenceError("x", iterations=7, residual=0.5, time=1e-9)
        assert err.iterations == 7
        assert err.residual == 0.5
        assert err.time == 1e-9


class TestGminStepping:
    def test_back_to_back_inverters_converge(self):
        """A bistable latch has three DC solutions; gmin-stepped Newton
        must settle on one without diverging."""
        c = Circuit()
        pn = MosfetParams(kp=120e-6, vt=0.5, lam=0.06)
        pp = MosfetParams(kp=40e-6, vt=0.55, lam=0.08)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        for name, a, y in (("u1", "q", "qb"), ("u2", "qb", "q")):
            c.add_nmos(name + "n", y, a, "0", "0", 1e-6, 0.25e-6, pn)
            c.add_pmos(name + "p", y, a, "vdd", "vdd", 2.5e-6,
                       0.25e-6, pp)
        compiled = CompiledCircuit(c)
        x = solve_dc(compiled)
        assert np.all(np.isfinite(x))
        assert np.abs(x[:compiled.n_nodes]).max() <= 2.6

    def test_large_stack_converges(self):
        """A 12-high series NMOS stack stresses the continuation path."""
        c = Circuit()
        p = MosfetParams(kp=120e-6, vt=0.5, lam=0.06)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VG", "g", "0", 2.5)
        c.add_resistor("RL", "vdd", "n0", 5e3)
        for i in range(12):
            c.add_nmos("M{}".format(i), "n{}".format(i), "g",
                       "n{}".format(i + 1) if i < 11 else "0", "0",
                       1e-6, 0.25e-6, p)
        from repro.spice import operating_point
        op = operating_point(c)
        # the stack conducts (n0 pulled visibly below the rail) and the
        # node voltages decrease monotonically toward ground
        assert op["n0"] < 2.4
        chain = [op["n{}".format(i)] for i in range(12)]
        assert all(a > b for a, b in zip(chain, chain[1:]))


class TestTransientRobustness:
    def test_fast_edge_into_stiff_load(self):
        """A 1 ps edge into a tiny RC must not blow up the integrator."""
        c = Circuit()
        c.add_vsource("V1", "in", "0",
                      Pulse(0, 2.5, delay=50e-12, rise=1e-12, width=1.0))
        c.add_resistor("R1", "in", "out", 10.0)
        c.add_capacitor("C1", "out", "0", 1e-16)
        wf = run_transient(c, 0.5e-9, 2e-12)
        assert np.all(np.isfinite(wf["out"]))
        assert wf.value_at("out", 0.4e-9) == pytest.approx(2.5, abs=0.05)

    def test_long_idle_window_stays_quiet(self):
        """No spurious drift on a quiescent CMOS stage over 20 ns."""
        c = Circuit()
        pn = MosfetParams(kp=120e-6, vt=0.5, lam=0.06, cgs=2e-15,
                          cdb=2e-15)
        pp = MosfetParams(kp=40e-6, vt=0.55, lam=0.08, cgs=5e-15,
                          cdb=4e-15)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VIN", "a", "0", 0.0)
        c.add_nmos("MN", "y", "a", "0", "0", 1e-6, 0.25e-6, pn)
        c.add_pmos("MP", "y", "a", "vdd", "vdd", 2.5e-6, 0.25e-6, pp)
        c.add_capacitor("CL", "y", "0", 20e-15)
        wf = run_transient(c, 20e-9, 20e-12, record=["y"])
        assert wf["y"].min() > 2.4
        assert wf["y"].max() < 2.6
