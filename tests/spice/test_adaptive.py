"""Adaptive (LTE-controlled) transient stepping.

The fixed-step engine is the reference: the adaptive grid must
reproduce its waveform measurements within measurement tolerance while
taking materially fewer steps.  The paper-bench equivalence class pins
the ISSUE acceptance criteria: d_p and w_out within 0.1 ps of a 4x
finer fixed grid, with >= 2x fewer accepted steps than the default
fixed grid.
"""

import math

import numpy as np
import pytest

from repro.core.pulse import (DEFAULT_DT, build_instance,
                              measure_output_pulse,
                              measure_output_pulse_batch,
                              measure_path_delay, measure_path_delay_batch,
                              simulation_window)
from repro.spice import (ADAPTIVE_STATS, BACKWARD_EULER, Circuit, Pulse,
                         Pwl, run_transient, run_transient_batch)
from repro.spice.errors import AnalysisError
from repro.spice.sources import collect_breakpoints

W_IN = 0.40e-9


def rc_circuit(r=1e3, c=1e-12):
    circuit = Circuit("rc")
    circuit.add_vsource(
        "V1", "in", "0",
        Pulse(0.0, 1.0, delay=1e-9, rise=0.1e-9, width=2e-9))
    circuit.add_resistor("R1", "in", "out", r)
    circuit.add_capacitor("C1", "out", "0", c)
    return circuit


def max_deviation(reference, wf, node):
    """Max |wf - reference| at the adaptive sample times."""
    ref = np.interp(wf.t, reference.t, reference[node])
    return float(np.abs(ref - wf[node]).max())


class TestAdaptiveRc:
    def test_matches_fine_fixed_grid(self):
        fine = run_transient(rc_circuit(), 6e-9, 5e-12)
        adaptive = run_transient(rc_circuit(), 6e-9, 20e-12,
                                 adaptive=True)
        assert max_deviation(fine, adaptive, "out") < 2e-3

    def test_uses_fewer_points_than_fixed(self):
        fixed = run_transient(rc_circuit(), 6e-9, 5e-12)
        adaptive = run_transient(rc_circuit(), 6e-9, 20e-12,
                                 adaptive=True)
        assert len(adaptive.t) < len(fixed.t) / 4

    def test_grid_covers_tstop(self):
        wf = run_transient(rc_circuit(), 6e-9, 20e-12, adaptive=True)
        assert wf.t[0] == 0.0
        assert wf.t[-1] >= 6e-9 * (1 - 1e-12)

    def test_time_base_strictly_increasing(self):
        wf = run_transient(rc_circuit(), 6e-9, 20e-12, adaptive=True)
        assert np.all(np.diff(wf.t) > 0)

    def test_lands_on_stimulus_breakpoints(self):
        """Every pulse corner is an exact grid point."""
        wf = run_transient(rc_circuit(), 6e-9, 20e-12, adaptive=True)
        for corner in (1e-9, 1.1e-9, 3.1e-9, 3.2e-9):
            assert np.min(np.abs(wf.t - corner)) < 1e-18

    def test_tighter_tolerance_takes_more_steps(self):
        loose = run_transient(rc_circuit(), 6e-9, 20e-12, adaptive=True,
                              lte_tol=5e-3)
        tight = run_transient(rc_circuit(), 6e-9, 20e-12, adaptive=True,
                              lte_tol=1e-5)
        assert len(tight.t) > len(loose.t)

    def test_stats_counters_increment(self):
        before = dict(ADAPTIVE_STATS)
        run_transient(rc_circuit(), 6e-9, 20e-12, adaptive=True)
        assert ADAPTIVE_STATS["runs"] == before["runs"] + 1
        assert ADAPTIVE_STATS["accepted"] > before["accepted"]


class TestAdaptiveArguments:
    def test_rejects_backward_euler(self):
        with pytest.raises(AnalysisError):
            run_transient(rc_circuit(), 1e-9, 1e-12, adaptive=True,
                          method=BACKWARD_EULER)

    def test_rejects_backward_euler_batch(self):
        with pytest.raises(AnalysisError):
            run_transient_batch([rc_circuit()], 1e-9, 1e-12,
                                adaptive=True, method=BACKWARD_EULER)

    def test_rejects_bad_lte_tol(self):
        with pytest.raises(AnalysisError):
            run_transient(rc_circuit(), 1e-9, 1e-12, adaptive=True,
                          lte_tol=0.0)

    def test_rejects_bad_dt_min(self):
        with pytest.raises(AnalysisError):
            run_transient(rc_circuit(), 1e-9, 1e-12, adaptive=True,
                          dt_min=-1e-15)


class TestBreakpointCollection:
    def test_pulse_corners_merged_and_sorted(self):
        stim = Pulse(0.0, 1.0, delay=1e-9, rise=0.1e-9, width=2e-9)
        points = collect_breakpoints([stim, stim], 6e-9)
        assert points == sorted(points)
        assert len(points) == len(set(points))
        for corner in (1e-9, 3.2e-9):
            assert min(abs(p - corner) for p in points) < 1e-18

    def test_endpoints_excluded(self):
        stim = Pwl([(0.0, 0.0), (2e-9, 1.0), (4e-9, 0.0)])
        points = collect_breakpoints([stim], 4e-9)
        assert points == [2e-9]

    def test_corners_past_tstop_dropped(self):
        stim = Pulse(0.0, 1.0, delay=1e-9, rise=0.1e-9, width=5e-9)
        points = collect_breakpoints([stim], 2e-9)
        assert all(p < 2e-9 for p in points)


class TestAdaptiveBatchEngine:
    def test_batch_matches_scalar_adaptive(self):
        """Lockstep adaptive == scalar adaptive for identical samples
        (same controller, same union grid)."""
        scalar = run_transient(rc_circuit(), 6e-9, 20e-12, adaptive=True)
        batched = run_transient_batch([rc_circuit(), rc_circuit()], 6e-9,
                                      20e-12, adaptive=True)
        for wf in batched:
            np.testing.assert_allclose(wf.t, scalar.t)
            np.testing.assert_allclose(wf["out"], scalar["out"],
                                       atol=1e-9)

    def test_batch_union_grid_covers_tstop(self):
        wfs = run_transient_batch([rc_circuit(1e3), rc_circuit(2e3)],
                                  6e-9, 20e-12, adaptive=True)
        assert wfs[0].t[-1] >= 6e-9 * (1 - 1e-12)
        np.testing.assert_allclose(wfs[0].t, wfs[1].t)


class TestPaperBenchEquivalence:
    """ISSUE acceptance: adaptive d_p / w_out within 0.1 ps of a 4x
    finer fixed grid, >= 2x fewer accepted steps than the default
    fixed grid."""

    def test_w_out_equivalence_and_step_budget(self):
        path = build_instance()
        w_fine, _ = measure_output_pulse(path, W_IN, dt=DEFAULT_DT / 4)
        before = ADAPTIVE_STATS["accepted"]
        w_adaptive, _ = measure_output_pulse(path, W_IN, dt=DEFAULT_DT,
                                             adaptive=True)
        accepted = ADAPTIVE_STATS["accepted"] - before
        assert abs(w_adaptive - w_fine) < 0.1e-12

        delay = path.set_input_pulse(W_IN, kind="h")
        tstop = simulation_window(path, w_in=W_IN, stimulus_delay=delay)
        fixed_steps = math.ceil(tstop / DEFAULT_DT)
        assert accepted * 2 <= fixed_steps

    def test_d_p_equivalence_and_step_budget(self):
        path = build_instance()
        d_fine, _ = measure_path_delay(path, dt=DEFAULT_DT / 4)
        before = ADAPTIVE_STATS["accepted"]
        d_adaptive, _ = measure_path_delay(path, dt=DEFAULT_DT,
                                           adaptive=True)
        accepted = ADAPTIVE_STATS["accepted"] - before
        assert abs(d_adaptive - d_fine) < 0.1e-12

        stim_delay = path.set_input_transition("rise")
        tstop = simulation_window(path, stimulus_delay=stim_delay)
        fixed_steps = math.ceil(tstop / DEFAULT_DT)
        assert accepted * 2 <= fixed_steps

    def test_batched_measurements_match_scalar_adaptive(self):
        from repro.montecarlo import sample_population

        samples = sample_population(3, base_seed=5)
        paths = [build_instance(sample=s) for s in samples]
        w_scalar = [measure_output_pulse(p, W_IN, adaptive=True)[0]
                    for p in paths]
        w_batch, _ = measure_output_pulse_batch(paths, W_IN,
                                                adaptive=True)
        for a, b in zip(w_scalar, w_batch):
            assert b == pytest.approx(a, abs=0.2e-12)

        d_scalar = [measure_path_delay(p, adaptive=True)[0]
                    for p in paths]
        d_batch, _ = measure_path_delay_batch(paths, adaptive=True)
        for a, b in zip(d_scalar, d_batch):
            assert b == pytest.approx(a, abs=0.2e-12)
