"""Waveform measurement tests on synthetic traces."""

import numpy as np
import pytest

from repro.spice import Waveform
from repro.spice.errors import MeasurementError


def make_pulse_wave(width=2.0, start=3.0, amplitude=1.0, n=1001, tmax=10.0):
    """Trapezoid-ish pulse with 0.5-unit edges."""
    t = np.linspace(0.0, tmax, n)
    v = np.zeros_like(t)
    edge = 0.5
    rise = np.clip((t - start) / edge, 0, 1)
    fall = np.clip((t - start - width) / edge, 0, 1)
    v = amplitude * (rise - fall)
    return Waveform(t, {"x": v})


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            Waveform(np.arange(5), {"x": np.arange(4)})

    def test_missing_signal_raises(self):
        wf = Waveform(np.arange(3.0), {"x": np.zeros(3)})
        with pytest.raises(MeasurementError):
            wf["y"]

    def test_contains_and_nodes(self):
        wf = Waveform(np.arange(3.0), {"b": np.zeros(3), "a": np.zeros(3)})
        assert "a" in wf
        assert wf.nodes() == ["a", "b"]


class TestCrossings:
    def test_rise_and_fall_detected(self):
        wf = make_pulse_wave()
        rises = wf.crossing_times("x", 0.5, "rise")
        falls = wf.crossing_times("x", 0.5, "fall")
        assert len(rises) == 1
        assert len(falls) == 1
        assert rises[0] == pytest.approx(3.25, abs=0.02)
        assert falls[0] == pytest.approx(5.25, abs=0.02)

    def test_direction_none_returns_both(self):
        wf = make_pulse_wave()
        assert len(wf.crossing_times("x", 0.5)) == 2

    def test_first_crossing_with_after(self):
        wf = make_pulse_wave()
        t = wf.first_crossing("x", 0.5, after=4.0)
        assert t == pytest.approx(5.25, abs=0.02)

    def test_no_crossing_returns_none(self):
        wf = make_pulse_wave(amplitude=0.3)
        assert wf.first_crossing("x", 0.5) is None


class TestPulseWidths:
    def test_width_at_half_level(self):
        wf = make_pulse_wave(width=2.0)
        # 50% width of a trapezoid = plateau + one edge
        assert wf.widest_pulse("x", 0.5) == pytest.approx(2.0, abs=0.05)

    def test_dampened_pulse_is_zero(self):
        wf = make_pulse_wave(amplitude=0.4)
        assert wf.widest_pulse("x", 0.5) == 0.0

    def test_low_polarity(self):
        t = np.linspace(0, 10, 1001)
        v = 1.0 - make_pulse_wave()["x"]
        wf = Waveform(t, {"x": v})
        assert wf.widest_pulse("x", 0.5, polarity="low") == pytest.approx(
            2.0, abs=0.05)

    def test_multiple_pulses_reports_widest(self):
        t = np.linspace(0, 20, 2001)
        v = np.zeros_like(t)
        v[(t > 2) & (t < 3)] = 1.0     # width 1
        v[(t > 8) & (t < 12)] = 1.0    # width 4
        wf = Waveform(t, {"x": v})
        assert wf.widest_pulse("x", 0.5) == pytest.approx(4.0, abs=0.05)
        assert len(wf.pulse_widths("x", 0.5)) == 2

    def test_pulse_clipped_by_window(self):
        t = np.linspace(0, 10, 101)
        v = np.where(t > 8, 1.0, 0.0)
        wf = Waveform(t, {"x": v})
        intervals = wf.pulse_intervals("x", 0.5)
        assert len(intervals) == 1
        assert intervals[0][1] == pytest.approx(10.0)

    def test_signal_starting_high(self):
        t = np.linspace(0, 10, 101)
        v = np.where(t < 2, 1.0, 0.0)
        wf = Waveform(t, {"x": v})
        intervals = wf.pulse_intervals("x", 0.5)
        assert intervals[0][0] == pytest.approx(0.0)

    def test_bad_polarity_rejected(self):
        wf = make_pulse_wave()
        with pytest.raises(MeasurementError):
            wf.pulse_widths("x", 0.5, polarity="sideways")


class TestDelayAndSlew:
    def test_propagation_delay_between_shifted_pulses(self):
        t = np.linspace(0, 10, 1001)
        a = make_pulse_wave(start=2.0)["x"]
        b = make_pulse_wave(start=2.7)["x"]
        wf = Waveform(t, {"a": a, "b": b})
        d = wf.propagation_delay("a", "b", 0.5, in_direction="rise",
                                 out_direction="rise")
        assert d == pytest.approx(0.7, abs=0.03)

    def test_delay_none_when_output_quiet(self):
        t = np.linspace(0, 10, 1001)
        a = make_pulse_wave(start=2.0)["x"]
        wf = Waveform(t, {"a": a, "b": np.zeros_like(t)})
        assert wf.propagation_delay("a", "b", 0.5) is None

    def test_transition_time_rising(self):
        wf = make_pulse_wave()
        # edge spans 0.5 units from 0 to 1 -> 10/90 takes 0.4
        tt = wf.transition_time("x", 0.1, 0.9, rising=True)
        assert tt == pytest.approx(0.4, abs=0.03)

    def test_transition_time_falling(self):
        wf = make_pulse_wave()
        tt = wf.transition_time("x", 0.1, 0.9, rising=False)
        assert tt == pytest.approx(0.4, abs=0.03)

    def test_peak_excursion(self):
        wf = make_pulse_wave(amplitude=0.8)
        assert wf.peak_excursion("x", 0.0) == pytest.approx(0.8, abs=1e-9)


class TestWindow:
    def test_window_restricts_time(self):
        wf = make_pulse_wave()
        sub = wf.window(4.0, 6.0)
        assert sub.t[0] >= 4.0
        assert sub.t[-1] <= 6.0

    def test_value_at_interpolates(self):
        t = np.array([0.0, 1.0])
        wf = Waveform(t, {"x": np.array([0.0, 2.0])})
        assert wf.value_at("x", 0.25) == pytest.approx(0.5)
