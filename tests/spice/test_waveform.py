"""Waveform measurement tests on synthetic traces."""

import numpy as np
import pytest

from repro.spice import Waveform
from repro.spice.errors import MeasurementError


def make_pulse_wave(width=2.0, start=3.0, amplitude=1.0, n=1001, tmax=10.0):
    """Trapezoid-ish pulse with 0.5-unit edges."""
    t = np.linspace(0.0, tmax, n)
    v = np.zeros_like(t)
    edge = 0.5
    rise = np.clip((t - start) / edge, 0, 1)
    fall = np.clip((t - start - width) / edge, 0, 1)
    v = amplitude * (rise - fall)
    return Waveform(t, {"x": v})


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            Waveform(np.arange(5), {"x": np.arange(4)})

    def test_missing_signal_raises(self):
        wf = Waveform(np.arange(3.0), {"x": np.zeros(3)})
        with pytest.raises(MeasurementError):
            wf["y"]

    def test_contains_and_nodes(self):
        wf = Waveform(np.arange(3.0), {"b": np.zeros(3), "a": np.zeros(3)})
        assert "a" in wf
        assert wf.nodes() == ["a", "b"]


class TestCrossings:
    def test_rise_and_fall_detected(self):
        wf = make_pulse_wave()
        rises = wf.crossing_times("x", 0.5, "rise")
        falls = wf.crossing_times("x", 0.5, "fall")
        assert len(rises) == 1
        assert len(falls) == 1
        assert rises[0] == pytest.approx(3.25, abs=0.02)
        assert falls[0] == pytest.approx(5.25, abs=0.02)

    def test_direction_none_returns_both(self):
        wf = make_pulse_wave()
        assert len(wf.crossing_times("x", 0.5)) == 2

    def test_first_crossing_with_after(self):
        wf = make_pulse_wave()
        t = wf.first_crossing("x", 0.5, after=4.0)
        assert t == pytest.approx(5.25, abs=0.02)

    def test_no_crossing_returns_none(self):
        wf = make_pulse_wave(amplitude=0.3)
        assert wf.first_crossing("x", 0.5) is None


class TestPulseWidths:
    def test_width_at_half_level(self):
        wf = make_pulse_wave(width=2.0)
        # 50% width of a trapezoid = plateau + one edge
        assert wf.widest_pulse("x", 0.5) == pytest.approx(2.0, abs=0.05)

    def test_dampened_pulse_is_zero(self):
        wf = make_pulse_wave(amplitude=0.4)
        assert wf.widest_pulse("x", 0.5) == 0.0

    def test_low_polarity(self):
        t = np.linspace(0, 10, 1001)
        v = 1.0 - make_pulse_wave()["x"]
        wf = Waveform(t, {"x": v})
        assert wf.widest_pulse("x", 0.5, polarity="low") == pytest.approx(
            2.0, abs=0.05)

    def test_multiple_pulses_reports_widest(self):
        t = np.linspace(0, 20, 2001)
        v = np.zeros_like(t)
        v[(t > 2) & (t < 3)] = 1.0     # width 1
        v[(t > 8) & (t < 12)] = 1.0    # width 4
        wf = Waveform(t, {"x": v})
        assert wf.widest_pulse("x", 0.5) == pytest.approx(4.0, abs=0.05)
        assert len(wf.pulse_widths("x", 0.5)) == 2

    def test_pulse_clipped_by_window(self):
        t = np.linspace(0, 10, 101)
        v = np.where(t > 8, 1.0, 0.0)
        wf = Waveform(t, {"x": v})
        intervals = wf.pulse_intervals("x", 0.5)
        assert len(intervals) == 1
        assert intervals[0][1] == pytest.approx(10.0)

    def test_signal_starting_high(self):
        t = np.linspace(0, 10, 101)
        v = np.where(t < 2, 1.0, 0.0)
        wf = Waveform(t, {"x": v})
        intervals = wf.pulse_intervals("x", 0.5)
        assert intervals[0][0] == pytest.approx(0.0)

    def test_bad_polarity_rejected(self):
        wf = make_pulse_wave()
        with pytest.raises(MeasurementError):
            wf.pulse_widths("x", 0.5, polarity="sideways")


class TestDelayAndSlew:
    def test_propagation_delay_between_shifted_pulses(self):
        t = np.linspace(0, 10, 1001)
        a = make_pulse_wave(start=2.0)["x"]
        b = make_pulse_wave(start=2.7)["x"]
        wf = Waveform(t, {"a": a, "b": b})
        d = wf.propagation_delay("a", "b", 0.5, in_direction="rise",
                                 out_direction="rise")
        assert d == pytest.approx(0.7, abs=0.03)

    def test_delay_none_when_output_quiet(self):
        t = np.linspace(0, 10, 1001)
        a = make_pulse_wave(start=2.0)["x"]
        wf = Waveform(t, {"a": a, "b": np.zeros_like(t)})
        assert wf.propagation_delay("a", "b", 0.5) is None

    def test_transition_time_rising(self):
        wf = make_pulse_wave()
        # edge spans 0.5 units from 0 to 1 -> 10/90 takes 0.4
        tt = wf.transition_time("x", 0.1, 0.9, rising=True)
        assert tt == pytest.approx(0.4, abs=0.03)

    def test_transition_time_falling(self):
        wf = make_pulse_wave()
        tt = wf.transition_time("x", 0.1, 0.9, rising=False)
        assert tt == pytest.approx(0.4, abs=0.03)

    def test_peak_excursion(self):
        wf = make_pulse_wave(amplitude=0.8)
        assert wf.peak_excursion("x", 0.0) == pytest.approx(0.8, abs=1e-9)


class TestWindow:
    def test_window_restricts_time(self):
        wf = make_pulse_wave()
        sub = wf.window(4.0, 6.0)
        assert sub.t[0] >= 4.0
        assert sub.t[-1] <= 6.0

    def test_value_at_interpolates(self):
        t = np.array([0.0, 1.0])
        wf = Waveform(t, {"x": np.array([0.0, 2.0])})
        assert wf.value_at("x", 0.25) == pytest.approx(0.5)

    def test_boundary_samples_interpolated_in(self):
        """Regression: samples straddling the window edge used to be
        dropped, mis-measuring any pulse crossing the boundary.  Here
        the 0.5-crossings sit at t=4.0 and t=7.0; a window starting at
        4.1 must keep the clipped pulse width 2.9, not snap to the
        first interior sample (2.8)."""
        t = np.array([0.0, 2.0, 3.8, 4.2, 6.0, 8.0, 10.0])
        v = np.array([0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0])
        wf = Waveform(t, {"x": v})
        sub = wf.window(4.1, 10.0)
        assert sub.t[0] == pytest.approx(4.1)
        assert sub["x"][0] == pytest.approx(0.75)
        assert sub.widest_pulse("x", 0.5) == pytest.approx(2.9)

    def test_window_edges_become_grid_points(self):
        wf = make_pulse_wave()
        sub = wf.window(4.05, 6.35)
        assert sub.t[0] == pytest.approx(4.05)
        assert sub.t[-1] == pytest.approx(6.35)

    def test_window_inside_one_step(self):
        """A window narrower than one sample interval still yields the
        two interpolated edge points."""
        t = np.array([0.0, 1.0])
        wf = Waveform(t, {"x": np.array([0.0, 2.0])})
        sub = wf.window(0.25, 0.75)
        assert list(sub.t) == [0.25, 0.75]
        assert sub["x"][0] == pytest.approx(0.5)
        assert sub["x"][1] == pytest.approx(1.5)

    def test_disjoint_window_is_empty(self):
        wf = make_pulse_wave()
        sub = wf.window(20.0, 30.0)
        assert len(sub.t) == 0

    def test_degenerate_window_single_point(self):
        wf = make_pulse_wave()
        sub = wf.window(5.0, 5.0)
        assert len(sub.t) == 1
        assert sub["x"][0] == pytest.approx(wf.value_at("x", 5.0))

    def test_inverted_window_rejected(self):
        wf = make_pulse_wave()
        with pytest.raises(MeasurementError):
            wf.window(6.0, 4.0)


class TestDegenerateMeasurements:
    """Waveforms at the edge of measurability: exact level touches,
    window-clipped pulses, single-sample plateaus, always-active
    signals."""

    def test_signal_exactly_touching_level_is_no_pulse(self):
        """v == level is not an excursion *past* the level (strict
        comparison): a signal that just touches must not report a
        pulse."""
        t = np.linspace(0.0, 4.0, 5)
        v = np.array([0.0, 0.25, 0.5, 0.25, 0.0])
        wf = Waveform(t, {"x": v})
        assert wf.pulse_intervals("x", 0.5) == []
        assert wf.widest_pulse("x", 0.5) == 0.0

    def test_plateau_exactly_at_level_is_no_pulse(self):
        t = np.linspace(0.0, 4.0, 5)
        v = np.array([0.0, 0.5, 0.5, 0.5, 0.0])
        wf = Waveform(t, {"x": v})
        assert wf.widest_pulse("x", 0.5) == 0.0

    def test_single_sample_plateau(self):
        """One sample above the level still yields a (short) pulse with
        interpolated edges."""
        t = np.array([0.0, 1.0, 2.0])
        v = np.array([0.0, 1.0, 0.0])
        wf = Waveform(t, {"x": v})
        intervals = wf.pulse_intervals("x", 0.5)
        assert len(intervals) == 1
        start, end = intervals[0]
        assert start == pytest.approx(0.5)
        assert end == pytest.approx(1.5)

    def test_active_at_both_window_edges(self):
        """A signal above the level at t[0] and t[-1] clips both
        interval ends to the window edges."""
        t = np.linspace(0.0, 10.0, 11)
        v = np.ones_like(t)
        v[4:7] = 0.0
        wf = Waveform(t, {"x": v})
        intervals = wf.pulse_intervals("x", 0.5)
        assert len(intervals) == 2
        assert intervals[0][0] == pytest.approx(0.0)
        assert intervals[1][1] == pytest.approx(10.0)

    def test_always_active_is_one_full_window_interval(self):
        t = np.linspace(0.0, 10.0, 11)
        wf = Waveform(t, {"x": np.ones_like(t)})
        assert wf.pulse_intervals("x", 0.5) == [(0.0, 10.0)]

    def test_clipped_pulse_after_windowing(self):
        """Windowing into the middle of a pulse keeps the boundary
        crossing: the clipped width is measured from the window edge."""
        wf = make_pulse_wave(width=2.0, start=3.0)
        # 0.5-crossings at ~3.25 and ~5.25; cut in at 4.0
        sub = wf.window(4.0, 10.0)
        assert sub.widest_pulse("x", 0.5) == pytest.approx(1.25,
                                                           abs=0.02)
