"""MNA compiler unit tests."""

import numpy as np
import pytest

from repro.spice import Circuit, MosfetParams
from repro.spice.errors import NetlistError
from repro.spice.mna import CompiledCircuit


@pytest.fixture()
def simple_rc():
    c = Circuit()
    c.add_vsource("V1", "in", "0", 1.0)
    c.add_resistor("R1", "in", "out", 1e3)
    c.add_capacitor("C1", "out", "0", 1e-12)
    return CompiledCircuit(c)


class TestIndexing:
    def test_node_count(self, simple_rc):
        assert simple_rc.n_nodes == 2
        assert simple_rc.n_vsrc == 1
        assert simple_rc.n == 3

    def test_ground_is_minus_one(self, simple_rc):
        assert simple_rc.index_of("0") == -1
        assert simple_rc.index_of("gnd") == -1

    def test_unknown_node_raises(self, simple_rc):
        with pytest.raises(NetlistError):
            simple_rc.index_of("nope")

    def test_empty_circuit_rejected(self):
        with pytest.raises(NetlistError):
            CompiledCircuit(Circuit())


class TestStaticMatrix:
    def test_resistor_stamp_symmetric(self, simple_rc):
        a = simple_rc.a_static
        i = simple_rc.index_of("in")
        o = simple_rc.index_of("out")
        g = 1e-3
        assert a[i, i] == pytest.approx(g)
        assert a[o, o] == pytest.approx(g)
        assert a[i, o] == pytest.approx(-g)
        assert a[o, i] == pytest.approx(-g)

    def test_vsource_incidence(self, simple_rc):
        a = simple_rc.a_static
        row = simple_rc.n_nodes  # first branch row
        i = simple_rc.index_of("in")
        assert a[row, i] == pytest.approx(1.0)
        assert a[i, row] == pytest.approx(1.0)

    def test_grounded_resistor_stamps_diagonal_only(self):
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "0", 100.0)
        compiled = CompiledCircuit(c)
        i = compiled.index_of("a")
        assert compiled.a_static[i, i] == pytest.approx(0.01)


class TestCapCompanion:
    def test_companion_value(self, simple_rc):
        a = simple_rc.cap_companion_matrix(1e12)  # geq = C/h = 1
        o = simple_rc.index_of("out")
        assert a[o, o] == pytest.approx(1.0)

    def test_branch_voltage_gather(self, simple_rc):
        x = np.zeros(simple_rc.n)
        x[simple_rc.index_of("out")] = 0.7
        v = simple_rc.cap_branch_voltages(x)
        assert v[0] == pytest.approx(0.7)

    def test_mosfet_intrinsic_caps_materialised(self):
        c = Circuit()
        p = MosfetParams(kp=1e-4, vt=0.5, cgs=1e-15, cgd=2e-15)
        c.add_vsource("V1", "g", "0", 1.0)
        c.add_nmos("M1", "d", "g", "0", "0", 1e-6, 1e-6, p)
        c.add_resistor("RL", "d", "0", 1e3)
        compiled = CompiledCircuit(c)
        assert compiled.n_caps == 2
        assert "M1.cgs" in compiled.cap_names


class TestSourceRhs:
    def test_vsource_value_in_branch_row(self, simple_rc):
        rhs = np.zeros(simple_rc.n)
        simple_rc.source_rhs(0.0, rhs)
        assert rhs[simple_rc.n_nodes] == pytest.approx(1.0)

    def test_isource_signs(self):
        c = Circuit()
        c.add_isource("I1", "a", "b", 2e-3)
        c.add_resistor("R1", "a", "0", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        compiled = CompiledCircuit(c)
        rhs = np.zeros(compiled.n)
        compiled.source_rhs(0.0, rhs)
        assert rhs[compiled.index_of("a")] == pytest.approx(-2e-3)
        assert rhs[compiled.index_of("b")] == pytest.approx(2e-3)


class TestMosfetStamping:
    def test_off_device_stamps_nothing_significant(self):
        c = Circuit()
        p = MosfetParams(kp=1e-4, vt=0.5)
        c.add_vsource("VD", "d", "0", 2.0)
        c.add_nmos("M1", "d", "g", "0", "0", 1e-6, 1e-6, p)
        c.add_resistor("RG", "g", "0", 1e6)
        compiled = CompiledCircuit(c)
        a = compiled.a_static.copy()
        rhs = np.zeros(compiled.n)
        x = np.zeros(compiled.n)
        x[compiled.index_of("d")] = 2.0
        compiled.stamp_mosfets(x, a, rhs, gmin=0.0)
        d = compiled.index_of("d")
        assert a[d, d] == pytest.approx(compiled.a_static[d, d], abs=1e-15)

    def test_drain_current_sign(self):
        c = Circuit()
        p = MosfetParams(kp=1e-4, vt=0.5)
        c.add_vsource("VD", "d", "0", 2.0)
        c.add_vsource("VG", "g", "0", 2.0)
        c.add_nmos("M1", "d", "g", "0", "0", 1e-6, 1e-6, p)
        compiled = CompiledCircuit(c)
        x = np.zeros(compiled.n)
        x[compiled.index_of("d")] = 2.0
        x[compiled.index_of("g")] = 2.0
        currents = compiled.mosfet_currents(x)
        assert currents[0] > 0.0  # current flows into the drain
