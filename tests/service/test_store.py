"""Durable job store: atomic records, recovery-friendly loading."""

import json
import math
import os

import pytest

from repro.runtime import SchemaVersionError
from repro.service import Job, JobStore, normalize_spec


def make_record(**extra):
    record = Job(normalize_spec({"kind": "campaign"})).to_record()
    record.update(extra)
    return record


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        store = JobStore(tmp_path)
        record = make_record()
        store.save(record)
        assert store.load(record["id"]) == record

    def test_nan_results_survive(self, tmp_path):
        """A dampened pulse measures NaN; strict JSON must carry it."""
        store = JobStore(tmp_path)
        record = make_record(result={"rows": [[float("nan"), 1.0]]})
        store.save(record)
        loaded = store.load(record["id"])
        row = loaded["result"]["rows"][0]
        assert math.isnan(row[0]) and row[1] == 1.0
        # and the on-disk bytes are strict JSON (no bare NaN token)
        with open(store.path(record["id"])) as handle:
            assert "NaN" not in handle.read()

    def test_missing_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            JobStore(tmp_path).load("nope")

    def test_delete(self, tmp_path):
        store = JobStore(tmp_path)
        record = make_record()
        store.save(record)
        assert store.delete(record["id"]) is True
        assert store.delete(record["id"]) is False


class TestLoadAll:
    def test_sorted_by_submission(self, tmp_path):
        store = JobStore(tmp_path)
        second = make_record(submitted_at=200.0)
        first = make_record(submitted_at=100.0)
        store.save(second)
        store.save(first)
        assert [r["id"] for r in store.load_all()] == [
            first["id"], second["id"]]

    def test_junk_files_skipped(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_record())
        os.makedirs(store.jobs_dir, exist_ok=True)
        with open(os.path.join(store.jobs_dir, "torn.json"), "w") as f:
            f.write("{not json")
        with open(os.path.join(store.jobs_dir, "x.tmp"), "w") as f:
            f.write("ignored")
        assert len(store.load_all()) == 1

    def test_future_schema_raises(self, tmp_path):
        store = JobStore(tmp_path)
        record = make_record()
        store.save(record)
        path = store.path(record["id"])
        with open(path) as handle:
            raw = json.load(handle)
        raw["schema_version"] = "99.0"
        with open(path, "w") as handle:
            json.dump(raw, handle)
        with pytest.raises(SchemaVersionError):
            store.load_all()

    def test_empty_dir(self, tmp_path):
        assert JobStore(tmp_path / "fresh").load_all() == []

    def test_junk_files_logged_and_collected(self, tmp_path, caplog):
        import logging

        store = JobStore(tmp_path)
        store.save(make_record())
        os.makedirs(store.jobs_dir, exist_ok=True)
        torn = os.path.join(store.jobs_dir, "torn.json")
        with open(torn, "w") as f:
            f.write("{not json")
        with caplog.at_level(logging.WARNING, logger="repro.service"):
            records = store.load_all()
        assert len(records) == 1
        assert store.load_errors == [torn]
        assert any(torn in message for message in caplog.messages)

    def test_load_errors_reset_on_clean_reload(self, tmp_path):
        store = JobStore(tmp_path)
        os.makedirs(store.jobs_dir, exist_ok=True)
        torn = os.path.join(store.jobs_dir, "torn.json")
        with open(torn, "w") as f:
            f.write("{")
        store.load_all()
        assert store.load_errors
        os.unlink(torn)
        store.load_all()
        assert store.load_errors == []


class TestDurability:
    def test_save_fsyncs_record_and_directory(self, tmp_path,
                                              monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: synced.append(fd) or
                            real_fsync(fd))
        store = JobStore(tmp_path)
        store.save(make_record())
        # one fsync for the temp file, one for the jobs/ directory
        assert len(synced) >= 2
