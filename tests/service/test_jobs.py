"""Job specs, the state machine, and record round-trips."""

import pytest

import repro.service.jobs as J
from repro.runtime import SchemaVersionError
from repro.service import InvalidTransition, Job, SpecError, normalize_spec


class TestNormalizeSpec:
    def test_sweep_defaults(self):
        spec = normalize_spec({"kind": "sweep",
                               "resistances": [2e3, 8e3]})
        assert spec["fault"] == "external_open"
        assert spec["measure"] == "pulse"
        assert spec["resistances"] == [2000.0, 8000.0]
        assert spec["dt"] == pytest.approx(5e-12)

    def test_sweep_requires_resistances(self):
        with pytest.raises(SpecError):
            normalize_spec({"kind": "sweep"})
        with pytest.raises(SpecError):
            normalize_spec({"kind": "sweep", "resistances": []})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError):
            normalize_spec({"kind": "nuclear"})
        with pytest.raises(SpecError):
            normalize_spec("not a dict")

    def test_unknown_sweep_fault_rejected(self):
        with pytest.raises(SpecError):
            normalize_spec({"kind": "sweep", "fault": "rust",
                            "resistances": [1e3]})

    def test_coverage_config_validated(self):
        spec = normalize_spec({"kind": "coverage", "fault": "open",
                               "config": {"n_samples": 3}})
        assert spec["config"]["n_samples"] == 3
        with pytest.raises(SpecError):
            normalize_spec({"kind": "coverage",
                            "config": {"no_such_knob": 1}})

    def test_campaign_defaults(self):
        spec = normalize_spec({"kind": "campaign"})
        assert spec["samples"] == 5
        assert spec["fast"] is False

    def test_sweep_solver_normalized(self):
        spec = normalize_spec({"kind": "sweep", "resistances": [1e3],
                               "solver": "exact"})
        assert spec["solver"] == "exact"
        # unset stays None (resolved to the host default at payload
        # build time, not at submission time)
        assert normalize_spec({"kind": "sweep",
                               "resistances": [1e3]})["solver"] is None

    def test_sweep_bad_solver_rejected(self):
        with pytest.raises(SpecError):
            normalize_spec({"kind": "sweep", "resistances": [1e3],
                            "solver": "magic"})


class TestStateMachine:
    def test_happy_path(self):
        job = Job(normalize_spec({"kind": "campaign"}))
        assert job.state == J.QUEUED
        job.transition(J.RUNNING)
        assert job.started_at is not None
        job.transition(J.DONE)
        assert job.terminal
        assert job.finished_at is not None

    def test_illegal_transitions_rejected(self):
        job = Job(normalize_spec({"kind": "campaign"}))
        with pytest.raises(InvalidTransition):
            job.transition(J.DONE)  # QUEUED -> DONE skips RUNNING
        job.transition(J.RUNNING)
        job.transition(J.FAILED)
        with pytest.raises(InvalidTransition):
            job.transition(J.RUNNING)  # terminal states are final

    def test_cancel_flag_is_cooperative(self):
        job = Job(normalize_spec({"kind": "campaign"}))
        assert not job.should_stop()
        job.request_cancel()
        assert job.should_stop()
        assert job.state == J.QUEUED  # the flag alone changes nothing


class TestRecords:
    def test_round_trip(self):
        job = Job(normalize_spec({"kind": "sweep",
                                  "resistances": [2e3]}), priority=3)
        job.transition(J.RUNNING)
        job.transition(J.DONE)
        job.result = {"rows": [[1.0]]}
        record = job.to_record()
        assert record["schema_version"]
        clone = Job.from_record(record)
        assert clone.id == job.id
        assert clone.state == J.DONE
        assert clone.priority == 3
        assert clone.result == {"rows": [[1.0]]}

    def test_future_major_rejected(self):
        record = Job(normalize_spec({"kind": "campaign"})).to_record()
        record["schema_version"] = "99.0"
        with pytest.raises(SchemaVersionError):
            Job.from_record(record)

    def test_ids_unique(self):
        spec = normalize_spec({"kind": "campaign"})
        ids = {Job(spec).id for _ in range(50)}
        assert len(ids) == 50
