"""HTTP layer + client SDK against a stub-runner manager.

One server fixture per class of tests; runners are stubs so the suite
exercises routing, status codes, backpressure and streaming without
electrical simulation.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.service.jobs as J
from repro.service import (JobManager, JobServer, ServiceClient,
                           ServiceError, ServiceUnavailable)

CAMPAIGN = {"kind": "campaign", "samples": 1}


@pytest.fixture
def service(tmp_path):
    """(manager, server, client) with a controllable stub runner."""
    hold = threading.Event()
    behaviors = {}

    def runner(spec, runtime, progress):
        mode = spec.get("sites")
        if mode == 99:
            hold.wait(15.0)
        if mode == 13:
            raise RuntimeError("boom")
        progress(1, 1)
        return {"ok": True}, {"n_tasks": 1}

    manager = JobManager(data_dir=str(tmp_path / "svc"), cache=False,
                         aggregate=False, max_concurrency=1,
                         queue_capacity=2, runner=runner).start()
    server = JobServer(manager).start_background()
    client = ServiceClient(server.url, timeout=15.0)
    behaviors["hold"] = hold
    yield manager, server, client, behaviors
    hold.set()
    server.shutdown()
    manager.stop(wait=True, cancel_running=True)


class TestEndpoints:
    def test_health(self, service):
        _, _, client, _ = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["max_concurrency"] == 1

    def test_submit_and_get(self, service):
        _, _, client, _ = service
        record = client.submit(CAMPAIGN)
        assert record["state"] in (J.QUEUED, J.RUNNING)
        final = client.wait(record["id"], poll=0.05, timeout=10.0)
        assert final["state"] == J.DONE
        assert final["result"] == {"ok": True}
        assert final["schema_version"]

    def test_list_jobs(self, service):
        _, _, client, _ = service
        record = client.submit(CAMPAIGN)
        ids = [r["id"] for r in client.jobs()]
        assert record["id"] in ids

    def test_bad_spec_is_400(self, service):
        _, _, client, _ = service
        with pytest.raises(ServiceError) as err:
            client.submit({"kind": "nuclear"})
        assert err.value.status == 400

    def test_missing_spec_is_400(self, service):
        _, server, _, _ = service
        request = urllib.request.Request(
            server.url + "/jobs", data=b'{"no_spec": 1}',
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400

    def test_unknown_job_is_404(self, service):
        _, _, client, _ = service
        for call in (lambda: client.job("nope"),
                     lambda: client.cancel("nope"),
                     lambda: client.events("nope")):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == 404

    def test_unknown_route_is_404(self, service):
        _, _, client, _ = service
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/frobnicate")
        assert err.value.status == 404

    def test_failed_job_reports_error(self, service):
        _, _, client, _ = service
        record = client.submit(dict(CAMPAIGN, sites=13))
        final = client.wait(record["id"], poll=0.05, timeout=10.0)
        assert final["state"] == J.FAILED
        assert "boom" in final["error"]


class TestBackpressure:
    def test_429_with_retry_after(self, service):
        manager, _, client, behaviors = service
        blocker = client.submit(dict(CAMPAIGN, sites=99))
        deadline = time.monotonic() + 5.0
        while (client.job(blocker["id"])["state"] != J.RUNNING
               and time.monotonic() < deadline):
            time.sleep(0.02)
        client.submit(CAMPAIGN)
        client.submit(CAMPAIGN)  # capacity 2 reached
        with pytest.raises(ServiceUnavailable) as err:
            client.submit(CAMPAIGN)
        assert err.value.status == 429
        assert err.value.retry_after >= 1.0
        behaviors["hold"].set()

    def test_submit_retrying_eventually_lands(self, service):
        manager, _, client, behaviors = service
        blocker = client.submit(dict(CAMPAIGN, sites=99))
        client.submit(CAMPAIGN)
        client.submit(CAMPAIGN)

        def release():
            time.sleep(0.3)
            behaviors["hold"].set()

        threading.Thread(target=release, daemon=True).start()
        record = client.submit_retrying(CAMPAIGN, attempts=20)
        assert record["id"]


class TestCancellation:
    def test_delete_cancels_queued(self, service):
        _, _, client, behaviors = service
        blocker = client.submit(dict(CAMPAIGN, sites=99))
        queued = client.submit(CAMPAIGN)
        cancelled = client.cancel(queued["id"])
        assert cancelled["state"] == J.CANCELLED
        behaviors["hold"].set()
        final = client.wait(blocker["id"], poll=0.05, timeout=10.0)
        assert final["state"] == J.DONE


class TestEvents:
    def test_long_poll_shape(self, service):
        _, _, client, _ = service
        record = client.submit(CAMPAIGN)
        client.wait(record["id"], poll=0.05, timeout=10.0)
        response = client.events(record["id"])
        assert response["state"] == J.DONE
        names = [e["event"] for e in response["events"]]
        assert names[0] == "state" and names[-1] == "state"
        assert response["next_after"] == len(response["events"]) - 1
        # a second poll past the end returns nothing, immediately
        again = client.events(record["id"],
                              after=response["next_after"], wait=5.0)
        assert again["events"] == []

    def test_stream_terminates_after_terminal(self, service):
        _, _, client, _ = service
        record = client.submit(CAMPAIGN)
        client.wait(record["id"], poll=0.05, timeout=10.0)
        events = list(client.stream_events(record["id"]))
        names = [e["event"] for e in events]
        assert names[-1] == "state"
        assert events[-1]["state"] == J.DONE
        # seq numbering is contiguous from the start
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_stream_follows_live_job(self, service):
        _, _, client, behaviors = service
        record = client.submit(dict(CAMPAIGN, sites=99))
        collected = []

        def consume():
            for event in client.stream_events(record["id"]):
                collected.append(event)

        reader = threading.Thread(target=consume, daemon=True)
        reader.start()
        time.sleep(0.3)
        behaviors["hold"].set()
        reader.join(timeout=15.0)
        assert not reader.is_alive(), "stream never terminated"
        assert collected[-1]["event"] == "state"
        assert collected[-1]["state"] == J.DONE

    def test_watch_returns_final_record(self, service):
        _, _, client, _ = service
        record = client.submit(CAMPAIGN)
        seen = []
        final = client.watch(record["id"],
                             on_event=lambda e: seen.append(e["event"]),
                             poll_wait=2.0)
        assert final["state"] == J.DONE
        assert "progress" in seen
        assert seen.count("state") >= 2  # QUEUED/RUNNING ... DONE


class TestJsonStrictness:
    def test_nan_results_round_trip(self, tmp_path):
        def runner(spec, runtime, progress):
            return {"width": float("nan")}, None

        manager = JobManager(data_dir=str(tmp_path / "svc2"),
                             cache=False, aggregate=False,
                             runner=runner).start()
        server = JobServer(manager).start_background()
        try:
            client = ServiceClient(server.url)
            record = client.submit(CAMPAIGN)
            final = client.wait(record["id"], poll=0.05, timeout=10.0)
            value = final["result"]["width"]
            assert value != value  # NaN survived strict JSON transport
            # the raw HTTP body is strict JSON (no bare NaN token)
            raw = urllib.request.urlopen(
                server.url + "/jobs/" + record["id"]).read()
            json.loads(raw, parse_constant=lambda token: pytest.fail(
                "non-strict JSON token {!r} on the wire".format(token)))
        finally:
            server.shutdown()
            manager.stop()
