"""End-to-end service tests with the real electrical engine.

Everything here goes over real HTTP (ephemeral port) and runs real
transient simulations, sized down hard (tiny populations, coarse dt)
so the whole module stays in tens of seconds.
"""

import time

import pytest

import repro.service.jobs as J
from repro.core.experiments import ExperimentConfig, run_open_coverage
from repro.runtime import Runtime, SerialExecutor
from repro.service import JobManager, JobServer, ServiceClient

#: tiny-but-real coverage workload (~7 s of simulation)
TINY_COVERAGE = {
    "n_samples": 2, "dt": 6e-12, "n_paths": 2,
    "rop_resistances": [2e3, 20e3],
    "bridging_resistances": [1e3, 8e3],
}

#: sweep sized so cancellation has several chunk boundaries to land on
CANCEL_SWEEP = {"kind": "sweep", "fault": "external_open", "stage": 2,
                "resistances": [2e3, 8e3, 20e3], "n_samples": 16,
                "seed": 11, "dt": 6e-12, "batch_size": 1}

PARITY_COUNTERS = ("n_tasks", "completed", "newton_solves",
                   "newton_iterations", "ladder_retries")


def serve(tmp_path, **kwargs):
    kwargs.setdefault("data_dir", str(tmp_path / "svc"))
    kwargs.setdefault("max_concurrency", 1)
    kwargs.setdefault("aggregate", False)
    manager = JobManager(**kwargs).start()
    server = JobServer(manager).start_background()
    return manager, server, ServiceClient(server.url, timeout=30.0)


class TestCounterParity:
    def test_concurrent_jobs_report_direct_run_counters(self, tmp_path):
        """Two concurrent jobs must report direct in-process counters.

        The jobs run side by side on two worker threads, so this pins
        the per-job telemetry scoping: each job's report must fold
        exactly the solver effort of its own spec, not a mix of the
        two.  Cache disabled on both sides: the coverage runs share
        content-addressed keys, so a shared cache would (correctly)
        zero one run's solver counters and hide a scoping regression.
        """
        manager, server, client = serve(tmp_path, cache=False,
                                        max_concurrency=2)
        try:
            seeds = (1, 2)
            records = [client.submit(
                {"kind": "coverage", "fault": "open",
                 "config": dict(TINY_COVERAGE, seed=seed)})
                for seed in seeds]
            finals = [client.wait(r["id"], poll=0.2, timeout=300.0)
                      for r in records]
            assert all(f["state"] == J.DONE for f in finals), [
                f.get("error") for f in finals]

            for seed, final in zip(seeds, finals):
                direct = run_open_coverage(
                    ExperimentConfig(seed=seed, **TINY_COVERAGE),
                    runtime=Runtime(executor=SerialExecutor()))
                expected = direct.report.summary()
                got = final["report"]
                for counter in PARITY_COUNTERS:
                    assert got[counter] == expected[counter], (
                        seed, counter)
                assert got["newton_solves"] > 0

                # and the result payload carries the same curves
                for label, curve in direct.pulse.curves.items():
                    assert final["result"]["pulse"][label]["hits"] == \
                        curve.hits
        finally:
            server.shutdown()
            manager.stop(wait=True, cancel_running=True)


class TestCancelAndResume:
    def test_cancel_midrun_then_resume_from_cache(self, tmp_path):
        manager, server, client = serve(tmp_path, cache=True)
        try:
            record = client.submit(dict(CANCEL_SWEEP))
            # wait until at least one chunk has settled (a task event),
            # then cancel over HTTP
            after = -1
            deadline = time.monotonic() + 120.0
            saw_task = False
            while time.monotonic() < deadline and not saw_task:
                response = client.events(record["id"], after=after,
                                         wait=2.0)
                for event in response["events"]:
                    after = event["seq"]
                    if event.get("event") == "task":
                        saw_task = True
                if response["state"] in ("DONE", "FAILED"):
                    pytest.fail("job finished before cancel landed; "
                                "grow CANCEL_SWEEP")
            assert saw_task
            client.cancel(record["id"])
            final = client.wait(record["id"], poll=0.1, timeout=60.0)
            assert final["state"] == J.CANCELLED

            # restart: a new manager over the same data dir serves the
            # cancelled record untouched...
            server.shutdown()
            manager.stop(wait=True)
            manager2, server2, client2 = serve(tmp_path, cache=True)
            try:
                again = client2.job(record["id"])
                assert again["state"] == J.CANCELLED

                # ...and resubmitting the same spec resumes from the
                # shared cache: the settled chunks are cache hits
                redo = client2.submit(dict(CANCEL_SWEEP))
                done = client2.wait(redo["id"], poll=0.2, timeout=300.0)
                assert done["state"] == J.DONE, done.get("error")
                assert done["report"]["cache_hits"] >= 1
                assert len(done["result"]["rows"]) == \
                    CANCEL_SWEEP["n_samples"]
            finally:
                server2.shutdown()
                manager2.stop(wait=True, cancel_running=True)
        finally:
            server.shutdown()
            manager.stop(wait=True, cancel_running=True)


class TestLiveStreaming:
    def test_stream_carries_solver_telemetry(self, tmp_path):
        """The ndjson stream of a real job includes per-task counters."""
        manager, server, client = serve(tmp_path, cache=False)
        try:
            spec = dict(CANCEL_SWEEP, n_samples=2, batch_size=1)
            record = client.submit(spec)
            events = list(client.stream_events(record["id"]))
            names = [e.get("event") for e in events]
            assert names[-1] == "state"
            assert events[-1]["state"] == J.DONE
            tasks = [e for e in events if e.get("event") == "task"]
            assert len(tasks) == 2
            assert all(e.get("schema_version") for e in tasks)
        finally:
            server.shutdown()
            manager.stop(wait=True, cancel_running=True)
