"""Job manager: scheduling, events, cancellation, recovery.

These tests inject stub runners, so no electrical simulation runs;
the real-spec execution paths are covered by ``test_service_e2e.py``.
"""

import threading
import time

import pytest

import repro.service.jobs as J
from repro.runtime import CampaignCancelled
from repro.service import JobManager, QueueFull

CAMPAIGN = {"kind": "campaign", "samples": 1}


def wait_for(predicate, timeout=10.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


def wait_terminal(manager, job_id, timeout=10.0):
    assert wait_for(lambda: manager.get_job(job_id).terminal,
                    timeout=timeout), (
        "job {} stuck in {}".format(job_id,
                                    manager.get_job(job_id).state))
    return manager.get_job(job_id)


@pytest.fixture
def make_manager(tmp_path):
    managers = []

    def factory(runner, **kwargs):
        kwargs.setdefault("data_dir", str(tmp_path / "svc"))
        kwargs.setdefault("cache", False)
        kwargs.setdefault("aggregate", False)
        kwargs.setdefault("max_concurrency", 1)
        manager = JobManager(runner=runner, **kwargs)
        managers.append(manager)
        return manager

    yield factory
    for manager in managers:
        manager.stop(wait=True, cancel_running=True)


class TestLifecycle:
    def test_submit_run_done(self, make_manager):
        def runner(spec, runtime, progress):
            progress(1, 1)
            runtime.trace.emit({"event": "task", "index": 0,
                                "newton_solves": 7})
            return {"answer": spec["samples"]}, {"n_tasks": 1}

        manager = make_manager(runner).start()
        job = manager.submit(CAMPAIGN)
        record = wait_terminal(manager, job.id).to_record()
        assert record["state"] == J.DONE
        assert record["result"] == {"answer": 1}
        assert record["report"] == {"n_tasks": 1}
        names = [e["event"] for e in manager.events_since(job.id)]
        assert names == ["state", "state", "progress", "task", "state"]
        # the terminal record is on disk, not just in memory
        assert manager.store.load(job.id)["state"] == J.DONE

    def test_runner_exception_fails_job(self, make_manager):
        def runner(spec, runtime, progress):
            raise ValueError("solver exploded")

        manager = make_manager(runner).start()
        job = manager.submit(CAMPAIGN)
        final = wait_terminal(manager, job.id)
        assert final.state == J.FAILED
        assert "solver exploded" in final.error

    def test_priority_order(self, make_manager):
        release = threading.Event()
        order = []

        def runner(spec, runtime, progress):
            if spec.get("sites") == 3:
                release.wait(10.0)
            else:
                order.append(spec["sites"])
            return {}, None

        manager = make_manager(runner).start()
        blocker = manager.submit(dict(CAMPAIGN, sites=3))
        wait_for(lambda: manager.get_job(blocker.id).state == J.RUNNING)
        low = manager.submit(dict(CAMPAIGN, sites=1), priority=0)
        high = manager.submit(dict(CAMPAIGN, sites=2), priority=9)
        release.set()
        wait_terminal(manager, low.id)
        wait_terminal(manager, high.id)
        assert order == [2, 1]

    def test_backpressure(self, make_manager):
        hold = threading.Event()

        def runner(spec, runtime, progress):
            hold.wait(10.0)
            return {}, None

        manager = make_manager(runner, queue_capacity=1).start()
        running = manager.submit(CAMPAIGN)
        wait_for(lambda: manager.get_job(running.id).state == J.RUNNING)
        manager.submit(CAMPAIGN)  # fills the queue
        with pytest.raises(QueueFull) as err:
            manager.submit(CAMPAIGN)
        assert err.value.retry_after >= 1.0
        hold.set()


class TestCancellation:
    def test_cancel_queued_never_runs(self, make_manager):
        hold = threading.Event()
        ran = []

        def runner(spec, runtime, progress):
            ran.append(spec.get("sites"))
            hold.wait(10.0)
            return {}, None

        manager = make_manager(runner).start()
        blocker = manager.submit(dict(CAMPAIGN, sites=3))
        wait_for(lambda: manager.get_job(blocker.id).state == J.RUNNING)
        queued = manager.submit(dict(CAMPAIGN, sites=1))
        cancelled = manager.cancel(queued.id)
        assert cancelled.state == J.CANCELLED
        hold.set()
        wait_terminal(manager, blocker.id)
        assert ran == [3]

    def test_cancel_running_is_cooperative(self, make_manager):
        started = threading.Event()

        def runner(spec, runtime, progress):
            started.set()
            while not runtime.should_stop():
                time.sleep(0.01)
            raise CampaignCancelled("campaign", done=3, total=10)

        manager = make_manager(runner).start()
        job = manager.submit(CAMPAIGN)
        assert started.wait(10.0)
        manager.cancel(job.id)
        final = wait_terminal(manager, job.id)
        assert final.state == J.CANCELLED

    def test_cancel_terminal_is_noop(self, make_manager):
        manager = make_manager(lambda s, r, p: ({}, None)).start()
        job = manager.submit(CAMPAIGN)
        wait_terminal(manager, job.id)
        assert manager.cancel(job.id).state == J.DONE


class TestEvents:
    def test_long_poll_wakes_on_event(self, make_manager):
        gate = threading.Event()

        def runner(spec, runtime, progress):
            gate.wait(10.0)
            return {}, None

        manager = make_manager(runner).start()
        job = manager.submit(CAMPAIGN)
        wait_for(lambda: len(manager.events_since(job.id)) >= 2)
        seen = manager.events_since(job.id)
        after = seen[-1]["seq"]

        def release():
            time.sleep(0.1)
            gate.set()

        threading.Thread(target=release, daemon=True).start()
        t0 = time.monotonic()
        fresh = manager.events_since(job.id, after=after, timeout=8.0)
        assert fresh, "long-poll returned empty"
        assert time.monotonic() - t0 < 5.0  # woke early, not at timeout
        assert fresh[0]["seq"] == after + 1

    def test_unknown_job_raises(self, make_manager):
        manager = make_manager(lambda s, r, p: ({}, None))
        with pytest.raises(KeyError):
            manager.events_since("nope")
        with pytest.raises(KeyError):
            manager.get_job("nope")


class TestRecovery:
    def test_interrupted_jobs_requeue_on_restart(self, make_manager,
                                                 tmp_path):
        data_dir = str(tmp_path / "svc")
        first = JobManager(data_dir=data_dir, cache=False,
                           runner=lambda s, r, p: ({}, None))
        # submitted but the manager never started: the record is
        # durable QUEUED, exactly like a server killed mid-backlog
        job = first.submit(CAMPAIGN)

        manager = make_manager(lambda s, r, p: ({"ok": 1}, None),
                               data_dir=data_dir).start()
        final = wait_terminal(manager, job.id)
        assert final.state == J.DONE
        assert final.resumed is True
        assert final.result == {"ok": 1}

    def test_terminal_jobs_served_without_rerun(self, make_manager,
                                                tmp_path):
        data_dir = str(tmp_path / "svc")
        ran = []

        def runner(spec, runtime, progress):
            ran.append(1)
            return {"ok": 1}, None

        first = make_manager(runner, data_dir=data_dir).start()
        job = first.submit(CAMPAIGN)
        wait_terminal(first, job.id)
        first.stop()

        second = make_manager(runner, data_dir=data_dir).start()
        record = second.get_job(job.id)
        assert record.state == J.DONE
        assert record.result == {"ok": 1}
        assert ran == [1]  # the restart did not re-execute anything

    def test_submit_before_start_runs_once(self, make_manager):
        ran = []

        def runner(spec, runtime, progress):
            ran.append(spec["samples"])
            return {}, None

        manager = make_manager(runner)
        job = manager.submit(CAMPAIGN)
        manager.start()  # recovery must not double-queue it
        wait_terminal(manager, job.id)
        time.sleep(0.2)
        assert ran == [1]


class TestAggregation:
    """Real (tiny) sweeps: the group path runs the actual batch task."""

    SWEEP = {"kind": "sweep", "fault": "external_open", "stage": 2,
             "resistances": [2e3], "n_samples": 1, "dt": 6e-12}

    def test_compatible_sweeps_coalesce(self, make_manager):
        manager = make_manager(None, aggregate=True, aggregate_limit=4)
        jobs = [manager.submit(dict(self.SWEEP, seed=s))
                for s in (1, 2, 3)]
        manager.start()
        finals = [wait_terminal(manager, j.id, timeout=120.0)
                  for j in jobs]
        assert all(f.state == J.DONE for f in finals)
        group = finals[0].report["aggregated_jobs"]
        assert sorted(group) == sorted(j.id for j in jobs)
        for final in finals:
            assert len(final.result["rows"]) == 1
            assert final.report["aggregated_jobs"] == group

    def test_incompatible_sweeps_run_alone(self, make_manager):
        manager = make_manager(None, aggregate=True)
        a = manager.submit(dict(self.SWEEP, seed=1))
        b = manager.submit(dict(self.SWEEP, seed=2, dt=7e-12))
        manager.start()
        final_a = wait_terminal(manager, a.id, timeout=120.0)
        final_b = wait_terminal(manager, b.id, timeout=120.0)
        assert "aggregated_jobs" not in (final_a.report or {})
        assert "aggregated_jobs" not in (final_b.report or {})

    def test_cancelled_member_excluded_from_group(self, make_manager):
        manager = make_manager(None, aggregate=True, aggregate_limit=4)
        keep = [manager.submit(dict(self.SWEEP, seed=s)) for s in (1, 2)]
        doomed = manager.submit(dict(self.SWEEP, seed=3))
        manager.cancel(doomed.id)
        manager.start()
        finals = [wait_terminal(manager, j.id, timeout=120.0)
                  for j in keep]
        assert manager.get_job(doomed.id).state == J.CANCELLED
        group = finals[0].report["aggregated_jobs"]
        assert doomed.id not in group
        assert sorted(group) == sorted(j.id for j in keep)


class TestWorkerResilience:
    def test_worker_survives_store_failure(self, make_manager):
        """A store write blowing up mid-dispatch must fail the job,
        not kill the worker thread."""
        manager = make_manager(lambda s, r, p: ({"ok": 1}, None))
        real_save = manager.store.save
        doomed_ids = set()

        def flaky_save(record):
            if record["id"] in doomed_ids and \
                    record["state"] == J.RUNNING:
                raise OSError("disk full")
            return real_save(record)

        manager.store.save = flaky_save
        manager.start()
        doomed = manager.submit(CAMPAIGN)
        doomed_ids.add(doomed.id)
        final = wait_terminal(manager, doomed.id)
        assert final.state == J.FAILED
        assert "disk full" in final.error
        # the worker is still alive and serves the next job
        healthy = manager.submit(CAMPAIGN)
        assert wait_terminal(manager, healthy.id).state == J.DONE


class TestRecoveredWithErrors:
    def test_flag_set_when_records_unparsable(self, make_manager,
                                              tmp_path):
        import os

        data_dir = str(tmp_path / "svc")
        manager = make_manager(lambda s, r, p: ({}, None),
                               data_dir=data_dir)
        jobs_dir = manager.store.jobs_dir
        os.makedirs(jobs_dir, exist_ok=True)
        with open(os.path.join(jobs_dir, "torn.json"), "w") as f:
            f.write("{not json")
        manager.start()
        assert manager.recovered_with_errors is True
        assert manager.stats()["recovered_with_errors"] is True

    def test_flag_clear_on_clean_boot(self, make_manager, tmp_path):
        manager = make_manager(lambda s, r, p: ({}, None),
                               data_dir=str(tmp_path / "svc"))
        manager.start()
        assert manager.recovered_with_errors is False
        assert manager.stats()["recovered_with_errors"] is False


class TestErrorKind:
    def test_failed_job_records_error_kind(self, make_manager):
        def runner(spec, runtime, progress):
            raise ValueError("boom")

        manager = make_manager(runner).start()
        job = manager.submit(CAMPAIGN)
        final = wait_terminal(manager, job.id)
        assert final.state == J.FAILED
        assert final.error_kind == "ValueError"
        assert final.to_record()["error_kind"] == "ValueError"

    def test_done_job_has_no_error_kind(self, make_manager):
        manager = make_manager(lambda s, r, p: ({"ok": 1}, None)).start()
        job = manager.submit(CAMPAIGN)
        final = wait_terminal(manager, job.id)
        assert final.state == J.DONE
        assert final.error_kind is None
