"""Sweep coalescing: signatures, group payloads, result splitting."""

import pytest

from repro.service import compatible, normalize_spec, sweep_signature
from repro.service.aggregator import (build_group_payloads,
                                      group_batch_size,
                                      split_group_values)


def sweep(**overrides):
    spec = {"kind": "sweep", "fault": "external_open",
            "resistances": [2e3, 8e3], "n_samples": 2}
    spec.update(overrides)
    return normalize_spec(spec)


class TestSignature:
    def test_non_sweep_has_no_signature(self):
        assert sweep_signature(normalize_spec({"kind": "campaign"})) is None

    def test_seed_and_samples_do_not_split_groups(self):
        assert compatible(sweep(seed=1, n_samples=2),
                          sweep(seed=9, n_samples=7))

    def test_batch_size_does_not_split_groups(self):
        assert compatible(sweep(batch_size=4), sweep(batch_size=16))

    @pytest.mark.parametrize("change", [
        {"fault": "bridging"},
        {"stage": 3},
        {"resistances": [2e3]},
        {"dt": 7e-12},
        {"adaptive": True},
        {"measure": "delay"},
        {"omega_in": 0.3e-9},
    ])
    def test_engine_relevant_fields_split_groups(self, change):
        assert not compatible(sweep(), sweep(**change))

    def test_solver_modes_split_groups(self):
        """Rows from different Newton solver modes agree only to
        tolerance; their chunks must not coalesce (the chunk task takes
        the solver from its first payload)."""
        assert not compatible(sweep(solver="exact"), sweep(solver="reuse"))

    def test_unset_solver_coalesces_with_resolved_default(self,
                                                          monkeypatch):
        """solver=None resolves to the host default before hashing, so
        an explicit spelling of the default still coalesces."""
        from repro.spice.mna import resolve_solver_mode

        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        default = resolve_solver_mode(None)
        assert compatible(sweep(), sweep(solver=default))


class TestGroupPayloads:
    def test_offsets_partition_the_concatenation(self):
        specs = [sweep(seed=1, n_samples=2), sweep(seed=2, n_samples=3)]
        payloads, keys, offsets = build_group_payloads(specs)
        assert offsets == [(0, 2), (2, 5)]
        assert len(payloads) == 5
        assert len(keys) == 5
        # one payload per Monte Carlo sample, each carrying the grid
        assert all(p["resistances"] == [2e3, 8e3] for p in payloads)

    def test_group_keys_match_solo_keys(self):
        """Coalescing must not change what lands in the cache."""
        specs = [sweep(seed=1), sweep(seed=2)]
        _, group_keys, offsets = build_group_payloads(specs)
        from repro.service.runners import sweep_payloads
        for spec, (start, end) in zip(specs, offsets):
            _, solo_keys = sweep_payloads(spec, with_keys=True)
            assert group_keys[start:end] == solo_keys

    def test_split_round_trips(self):
        values = ["a", "b", "c", "d", "e"]
        offsets = [(0, 2), (2, 5)]
        assert split_group_values(values, offsets) == [
            ["a", "b"], ["c", "d", "e"]]


class TestGroupBatchSize:
    def test_largest_request_wins(self):
        assert group_batch_size(
            [sweep(batch_size=4), sweep(batch_size=16), sweep()]) == 16

    def test_default_when_nobody_asks(self):
        assert group_batch_size([sweep(), sweep()], default=8) == 8
