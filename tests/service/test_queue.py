"""Bounded priority FIFO queue semantics."""

import pytest

from repro.service import PriorityJobQueue, QueueFull


class FakeJob:
    def __init__(self, job_id, priority=0):
        self.id = job_id
        self.priority = priority


class TestOrdering:
    def test_fifo_within_priority(self):
        queue = PriorityJobQueue()
        for name in "abc":
            queue.put(FakeJob(name))
        assert [queue.get(0).id for _ in "abc"] == ["a", "b", "c"]

    def test_higher_priority_first(self):
        queue = PriorityJobQueue()
        queue.put(FakeJob("low", 0))
        queue.put(FakeJob("high", 5))
        queue.put(FakeJob("mid", 2))
        order = [queue.get(0).id for _ in range(3)]
        assert order == ["high", "mid", "low"]

    def test_get_timeout_returns_none(self):
        assert PriorityJobQueue().get(timeout=0.01) is None

    def test_snapshot_is_dispatch_order(self):
        queue = PriorityJobQueue()
        queue.put(FakeJob("b", 0))
        queue.put(FakeJob("a", 9))
        assert [j.id for j in queue.snapshot()] == ["a", "b"]
        assert len(queue) == 2  # non-destructive


class TestBackpressure:
    def test_capacity_enforced(self):
        queue = PriorityJobQueue(capacity=2)
        queue.put(FakeJob("a"))
        queue.put(FakeJob("b"))
        with pytest.raises(QueueFull) as err:
            queue.put(FakeJob("c"))
        assert err.value.retry_after >= 1.0

    def test_force_bypasses_capacity(self):
        queue = PriorityJobQueue(capacity=1)
        queue.put(FakeJob("a"))
        queue.put(FakeJob("recovered"), force=True)
        assert len(queue) == 2

    def test_retry_after_scales_with_backlog(self):
        queue = PriorityJobQueue(capacity=10)
        for n in range(5):
            queue.put(FakeJob(str(n)))
        assert queue.retry_after_hint(seconds_per_job=2.0) == 10.0


class TestRemoval:
    def test_remove_queued(self):
        queue = PriorityJobQueue()
        queue.put(FakeJob("a"))
        queue.put(FakeJob("b"))
        assert queue.remove("a") is True
        assert queue.remove("a") is False  # already gone
        assert queue.get(0).id == "b"

    def test_take_matching_in_order_with_limit(self):
        queue = PriorityJobQueue()
        for name, priority in (("a", 0), ("b", 5), ("c", 0), ("d", 5)):
            queue.put(FakeJob(name, priority))
        taken = queue.take_matching(lambda j: j.priority == 5, limit=1)
        assert [j.id for j in taken] == ["b"]  # FIFO among matches
        rest = [queue.get(0).id for _ in range(3)]
        assert rest == ["d", "a", "c"]

    def test_take_matching_zero_limit(self):
        queue = PriorityJobQueue()
        queue.put(FakeJob("a"))
        assert queue.take_matching(lambda j: True, limit=0) == []
        assert len(queue) == 1
