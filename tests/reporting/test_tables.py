"""Reporting helper tests."""

from repro.core import CoverageCurve, CoverageResult
from repro.reporting import (ascii_plot, coverage_table, format_series,
                             format_table)


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "-" in lines[1]
        assert "22.5" in lines[3]

    def test_wide_cell_extends_column(self):
        out = format_table(["x"], [["a very long cell"]])
        assert "a very long cell" in out

    def test_float_precision(self):
        out = format_table(["v"], [[1.23456789]], precision=2)
        assert "1.235" in out  # precision+2 significant digits


class TestFormatSeries:
    def test_scaling_applied(self):
        out = format_series("curve", [1e-9], [0.5], x_scale=1e12)
        assert "1000" in out
        assert "curve" in out


class TestCoverageTable:
    def test_one_row_per_resistance(self):
        curves = {
            "0.9*T": CoverageCurve("0.9*T", [1e3, 2e3], [0, 4], 4),
            "1.0*T": CoverageCurve("1.0*T", [1e3, 2e3], [0, 2], 4),
        }
        result = CoverageResult([1e3, 2e3], curves, raw=None)
        out = coverage_table(result)
        lines = out.splitlines()
        assert len(lines) == 4
        assert "0.9*T" in lines[0]


class TestAsciiPlot:
    def test_plots_without_error(self):
        out = ascii_plot({"a": ([0, 1, 2], [0.0, 0.5, 1.0])})
        assert "legend" in out
        assert "o" in out

    def test_two_series_different_markers(self):
        out = ascii_plot({"a": ([0, 1], [0, 1]),
                          "b": ([0, 1], [1, 0])})
        assert "o a" in out
        assert "x b" in out

    def test_degenerate_ranges_handled(self):
        out = ascii_plot({"a": ([1, 1], [2, 2])})
        assert out  # no division by zero

    def test_empty_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            ascii_plot({"a": ([], [])})
