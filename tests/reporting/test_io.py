"""Export/import round-trip tests."""

import csv

import numpy as np
import pytest

from repro.core import CoverageCurve, CoverageResult, TransferCurve
from repro.reporting.io import (campaign_to_json, coverage_result_to_dict,
                                coverage_result_to_json, load_json,
                                transfer_curve_to_csv, waveform_to_csv)
from repro.spice import Waveform


class TestWaveformCsv:
    def test_round_trip(self, tmp_path):
        t = np.linspace(0, 1e-9, 5)
        wf = Waveform(t, {"a": t * 2.0, "b": t * -1.0})
        path = tmp_path / "wave.csv"
        waveform_to_csv(wf, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["time", "a", "b"]
        assert len(rows) == 6
        assert float(rows[1][0]) == pytest.approx(0.0)
        assert float(rows[-1][1]) == pytest.approx(2e-9)

    def test_node_subset(self, tmp_path):
        t = np.linspace(0, 1, 3)
        wf = Waveform(t, {"a": t, "b": t})
        path = tmp_path / "wave.csv"
        waveform_to_csv(wf, path, nodes=["b"])
        with open(path) as handle:
            header = next(csv.reader(handle))
        assert header == ["time", "b"]


class TestTransferCsv:
    def test_round_trip(self, tmp_path):
        curve = TransferCurve([1e-10, 2e-10, 3e-10],
                              [0.0, 1e-10, 2.4e-10])
        path = tmp_path / "curve.csv"
        transfer_curve_to_csv(curve, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["w_in", "w_out"]
        assert float(rows[2][1]) == pytest.approx(1e-10)


class TestCoverageJson:
    def make_result(self):
        curves = {
            "1.0*T": CoverageCurve("1.0*T", [1e3, 2e3], [0, 8], 8),
        }
        return CoverageResult([1e3, 2e3], curves, raw=None)

    def test_dict_shape(self):
        payload = coverage_result_to_dict(self.make_result())
        assert payload["resistances"] == [1000.0, 2000.0]
        assert payload["curves"]["1.0*T"] == [0.0, 1.0]
        assert payload["n_samples"]["1.0*T"] == 8

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "coverage.json"
        coverage_result_to_json(self.make_result(), path)
        loaded = load_json(path)
        assert loaded["curves"]["1.0*T"] == [0.0, 1.0]


class TestCampaignJson:
    def test_round_trip(self, tmp_path):
        from repro.logic import (DefectCalibration, c17, run_campaign)
        from repro.montecarlo import sample_population
        cal = DefectCalibration([1e3, 10e3], [1e-11, 1e-10],
                                [1e-11, 1e-10], [5e-12, 5e-11],
                                "external")
        campaign = run_campaign(c17(), cal,
                                samples=sample_population(2))
        path = tmp_path / "campaign.json"
        campaign_to_json(campaign, path)
        loaded = load_json(path)
        assert loaded["summary"]["n_sites"] == 6
        assert len(loaded["sites"]) == 6
        assert all("net" in s for s in loaded["sites"])
