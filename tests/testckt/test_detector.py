"""Transition-detector tests (transistor level)."""

import pytest

from repro.cells import default_technology
from repro.spice import Circuit, Dc, Pulse, run_transient
from repro.testckt import build_transition_detector

DT = 4e-12


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def detector_circuit(tech, stimulus, **kwargs):
    c = Circuit()
    c.add_vsource("VDD", "vdd", "0", tech.vdd)
    c.add_vsource("VX", "x", "0", stimulus)
    det = build_transition_detector(c, "td", "x", tech, **kwargs)
    return c, det


def run_detector(tech, stimulus, tstop=4e-9, **kwargs):
    c, det = detector_circuit(tech, stimulus, **kwargs)
    det.arm(c, release_at=0.4e-9)
    wf = run_transient(c, tstop, DT,
                       record=["x", det.flag_node])
    return det, wf


class TestStructure:
    def test_even_line_rejected(self, tech):
        c = Circuit()
        c.add_vsource("VDD", "vdd", "0", tech.vdd)
        c.add_vsource("VX", "x", "0", 0.0)
        with pytest.raises(ValueError):
            build_transition_detector(c, "td", "x", tech,
                                      n_delay_stages=2)

    def test_arm_needs_vdd_source(self, tech):
        c = Circuit()
        c.add_vsource("SUPPLY", "vdd", "0", tech.vdd)  # wrong name
        c.add_vsource("VX", "x", "0", 0.0)
        det = build_transition_detector(c, "td", "x", tech)
        with pytest.raises(ValueError):
            det.arm(c)


class TestDetection:
    def test_quiet_node_keeps_flag_high(self, tech):
        det, wf = run_detector(tech, Dc(0.0))
        assert not det.transition_seen(wf, tech.vdd)
        assert det.fault_detected(wf, tech.vdd)

    def test_full_transition_fires(self, tech):
        step = Pulse(0, tech.vdd, delay=1.2e-9, rise=60e-12, width=1.0)
        det, wf = run_detector(tech, step)
        assert det.transition_seen(wf, tech.vdd)

    def test_wide_pulse_fires(self, tech):
        pulse = Pulse(0, tech.vdd, delay=1.2e-9, rise=60e-12,
                      width=0.5e-9, fall=60e-12)
        det, wf = run_detector(tech, pulse)
        assert det.transition_seen(wf, tech.vdd)

    def test_tiny_pulse_rejected(self, tech):
        """A pulse far below the detector's threshold must not fire it —
        the omega_th floor is real circuit behaviour here."""
        pulse = Pulse(0, tech.vdd, delay=1.2e-9, rise=30e-12,
                      width=10e-12, fall=30e-12)
        det, wf = run_detector(tech, pulse)
        assert not det.transition_seen(wf, tech.vdd)

    def test_effective_threshold_exists_and_is_monotone(self, tech):
        """Sweeping the observed pulse width crosses a firing threshold;
        flag voltage decreases monotonically-ish with width."""
        flags = []
        for width in (20e-12, 120e-12, 400e-12):
            pulse = Pulse(0, tech.vdd, delay=1.2e-9, rise=50e-12,
                          width=width, fall=50e-12)
            det, wf = run_detector(tech, pulse)
            flags.append(wf.value_at(det.flag_node, wf.t[-1]))
        assert flags[0] > flags[-1]
        assert flags[0] > tech.vdd_half        # rejected
        assert flags[-1] < tech.vdd_half       # detected

    def test_before_arming_flag_precharged(self, tech):
        det, wf = run_detector(tech, Dc(0.0))
        # during the precharge phase the flag sits at VDD
        assert wf.value_at(det.flag_node, 0.3e-9) > tech.vdd - 0.3
