"""Pulse-generator tests (transistor level)."""

import pytest

from repro.cells import default_technology
from repro.spice import Circuit, run_transient
from repro.testckt import build_pulse_generator, trigger_stimulus

DT = 4e-12


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def generator_circuit(tech, n_stages=5, kind="h"):
    c = Circuit()
    c.add_vsource("VDD", "vdd", "0", tech.vdd)
    c.add_vsource("VTRIG", "trig", "0", trigger_stimulus(tech, at=0.5e-9))
    c.add_capacitor("CL", "out", "0", 3 * tech.gate_input_capacitance())
    gen = build_pulse_generator(c, "pg", "trig", "out", tech,
                                n_stages=n_stages, kind=kind)
    return c, gen


class TestStructure:
    def test_even_line_rejected(self, tech):
        c = Circuit()
        c.add_vsource("VDD", "vdd", "0", tech.vdd)
        with pytest.raises(ValueError):
            build_pulse_generator(c, "pg", "t", "o", tech, n_stages=4)

    def test_bad_kind_rejected(self, tech):
        c = Circuit()
        c.add_vsource("VDD", "vdd", "0", tech.vdd)
        with pytest.raises(ValueError):
            build_pulse_generator(c, "pg", "t", "o", tech, kind="z")

    def test_nominal_width_estimate(self, tech):
        c, gen = generator_circuit(tech, 5)
        assert gen.nominal_width() == pytest.approx(5 * 110e-12)


class TestElectrical:
    def test_h_generator_pulses_high(self, tech):
        c, gen = generator_circuit(tech, 5, kind="h")
        wf = run_transient(c, 3e-9, DT, record=["trig", "out"])
        half = tech.vdd_half
        assert wf.value_at("out", 0.05e-9) < 0.2       # idles low
        width = wf.widest_pulse("out", half, "high")
        assert 0.2e-9 < width < 1.2e-9

    def test_l_generator_pulses_low(self, tech):
        c, gen = generator_circuit(tech, 5, kind="l")
        wf = run_transient(c, 3e-9, DT, record=["out"])
        half = tech.vdd_half
        assert wf.value_at("out", 0.05e-9) > tech.vdd - 0.2  # idles high
        width = wf.widest_pulse("out", half, "low")
        assert 0.2e-9 < width < 1.2e-9

    def test_width_scales_with_delay_stages(self, tech):
        widths = []
        for n in (3, 5, 7):
            c, _ = generator_circuit(tech, n)
            wf = run_transient(c, 3.5e-9, DT, record=["out"])
            widths.append(wf.widest_pulse("out", tech.vdd_half, "high"))
        assert widths[0] < widths[1] < widths[2]

    def test_single_pulse_only(self, tech):
        c, _ = generator_circuit(tech, 5)
        wf = run_transient(c, 4e-9, DT, record=["out"])
        assert len(wf.pulse_widths("out", tech.vdd_half, "high")) == 1

    def test_width_tracks_process_corner(self, tech):
        """A slow corner widens the generated pulse — the locality
        property the paper's robustness argument rests on."""
        slow = tech.scaled({"kpn": 0.8, "kpp": 0.8})
        c_nom, _ = generator_circuit(tech, 5)
        c_slow, _ = generator_circuit(slow, 5)
        wf_nom = run_transient(c_nom, 3.5e-9, DT, record=["out"])
        wf_slow = run_transient(c_slow, 3.5e-9, DT, record=["out"])
        w_nom = wf_nom.widest_pulse("out", tech.vdd_half, "high")
        w_slow = wf_slow.widest_pulse("out", slow.vdd_half, "high")
        assert w_slow > w_nom
