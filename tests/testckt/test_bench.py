"""Assembled on-chip test structure (generator + path + detector)."""

import pytest

from repro.faults import (BridgingFault, ExternalOpen, InternalOpen,
                          PULL_UP)
from repro.montecarlo import VariationModel
from repro.testckt import build_onchip_test, run_onchip_test

DT = 4e-12


class TestAssembly:
    def test_structure(self):
        bench = build_onchip_test()
        assert bench.path.n_gates == 7
        assert bench.generator.output_node == bench.path.input_node
        assert bench.detector.observed_node == bench.path.output_node
        # the ideal input driver is gone
        assert "VIN" not in bench.circuit

    def test_faulty_assembly(self):
        bench = build_onchip_test(fault=ExternalOpen(2, 8e3))
        assert "R_fault" in bench.circuit


class TestHealthyOperation:
    def test_healthy_instance_passes(self):
        bench = build_onchip_test()
        detected, wf = run_onchip_test(bench, dt=DT)
        assert not detected
        # the generated pulse reached the output
        half = bench.tech.vdd_half
        assert wf.widest_pulse(bench.path.output_node, half,
                               "low") > 0.25e-9

    def test_generated_pulse_width_reasonable(self):
        bench = build_onchip_test()
        _, wf = run_onchip_test(bench, dt=DT)
        half = bench.tech.vdd_half
        width = wf.widest_pulse(bench.path.input_node, half, "high")
        assert 0.25e-9 < width < 0.9e-9


class TestFaultDetection:
    def test_internal_open_detected(self):
        bench = build_onchip_test(fault=InternalOpen(2, PULL_UP, 8e3))
        detected, _ = run_onchip_test(bench, dt=DT)
        assert detected

    def test_bridging_detected(self):
        bench = build_onchip_test(fault=BridgingFault(2, 2.5e3))
        detected, _ = run_onchip_test(bench, dt=DT)
        assert detected

    def test_small_open_escapes(self):
        """A tiny open must NOT trip the detector (no false positive)."""
        bench = build_onchip_test(fault=ExternalOpen(2, 300.0))
        detected, _ = run_onchip_test(bench, dt=DT)
        assert not detected


class TestProcessTracking:
    def test_slow_instance_still_passes(self):
        """Generator, path and detector share the corner: a uniformly
        slow die generates a wider pulse and still passes — the
        self-tracking property the method claims."""
        slow = VariationModel(seed=1234, sigma_global=0.10,
                              sigma_local=0.0)
        # force a slow corner by picking a seed whose kp factors < 1
        bench = build_onchip_test(sample=slow)
        detected, _ = run_onchip_test(bench, dt=DT)
        assert not detected

    def test_varied_instances_pass(self):
        for seed in (3, 4):
            bench = build_onchip_test(sample=VariationModel(seed=seed))
            detected, _ = run_onchip_test(bench, dt=DT)
            assert not detected, "false positive at seed {}".format(seed)
