"""Delay-line tests."""

import pytest

from repro.cells import default_technology
from repro.spice import Circuit, Pulse, run_transient
from repro.testckt import build_delay_line

DT = 4e-12


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def line_circuit(tech, n_stages):
    c = Circuit()
    c.add_vsource("VDD", "vdd", "0", tech.vdd)
    c.add_vsource("VIN", "x", "0",
                  Pulse(0, tech.vdd, delay=0.3e-9, rise=60e-12,
                        width=3e-9, fall=60e-12))
    line = build_delay_line(c, "dl", "x", "xd", tech, n_stages)
    return c, line


class TestStructure:
    def test_stage_count_and_parity(self, tech):
        c, line = line_circuit(tech, 5)
        assert line.n_stages == 5
        assert line.inverting
        c, line = line_circuit(tech, 4)
        assert not line.inverting

    def test_rejects_empty_line(self, tech):
        c = Circuit()
        c.add_vsource("VDD", "vdd", "0", tech.vdd)
        with pytest.raises(ValueError):
            build_delay_line(c, "dl", "x", "xd", tech, 0)

    def test_internal_nodes_are_namespaced(self, tech):
        c, line = line_circuit(tech, 3)
        assert "dl:d0" in c.nodes()


class TestTiming:
    def test_delay_grows_with_stage_count(self, tech):
        half = tech.vdd_half
        delays = []
        for n in (3, 5, 7):
            c, line = line_circuit(tech, n)
            wf = run_transient(c, 2.5e-9, DT, record=["x", "xd"])
            direction = "fall" if line.inverting else "rise"
            d = wf.propagation_delay("x", "xd", half,
                                     in_direction="rise",
                                     out_direction=direction)
            delays.append(d)
        assert delays[0] < delays[1] < delays[2]
        # roughly linear in n
        assert delays[2] == pytest.approx(delays[0] * 7 / 3, rel=0.35)

    def test_odd_line_inverts(self, tech):
        c, line = line_circuit(tech, 3)
        wf = run_transient(c, 2.5e-9, DT, record=["xd"])
        assert wf.value_at("xd", 0.05e-9) > tech.vdd - 0.2  # idle: NOT 0
        assert wf.value_at("xd", 2.2e-9) < 0.2
