"""Pulse-test generation tests (kind selection is the heart)."""

import pytest

from repro.core import (build_instance, degraded_transition,
                        estimate_r_min, generate_pulse_test,
                        measure_output_pulse, select_pulse_kind)
from repro.core.testgen import BOTH, FALL, RISE
from repro.faults import (BridgingFault, ExternalOpen,
                          InternalBridgingFault, InternalOpen, PULL_DOWN,
                          PULL_UP)
from repro.montecarlo import sample_population

DT = 5e-12
NAND_CHAIN = ("inv", "nand2", "inv", "nand2", "inv", "inv", "inv")


class TestDegradedTransition:
    def test_internal_open_polarity(self):
        assert degraded_transition(InternalOpen(2, PULL_UP, 1e3)) == RISE
        assert degraded_transition(InternalOpen(2, PULL_DOWN, 1e3)) == FALL

    def test_external_open_both(self):
        assert degraded_transition(ExternalOpen(2, 1e3)) == BOTH

    def test_bridging_follows_aggressor(self):
        assert degraded_transition(BridgingFault(2, 1e3,
                                                 aggressor_value=0)) == RISE
        assert degraded_transition(BridgingFault(2, 1e3,
                                                 aggressor_value=1)) == FALL

    def test_internal_bridging_needs_cell_kind(self):
        fault = InternalBridgingFault(2, 1e3)
        with pytest.raises(ValueError):
            degraded_transition(fault)
        assert degraded_transition(fault, cell_kind="nand2") == FALL
        assert degraded_transition(fault, cell_kind="nor2") == RISE

    def test_unknown_fault_rejected(self):
        with pytest.raises(TypeError):
            degraded_transition(object())


class TestSelectPulseKind:
    def test_pullup_open_at_even_stage_wants_h(self):
        path = build_instance()
        # stage 2 idles low under 'h' (two inversions); its leading edge
        # rises -> matches the slowed transition.
        assert select_pulse_kind(path, InternalOpen(2, PULL_UP, 1e3)) == "h"

    def test_pullup_open_at_odd_stage_wants_l(self):
        path = build_instance()
        assert select_pulse_kind(path, InternalOpen(3, PULL_UP, 1e3)) == "l"

    def test_pulldown_open_flips_choice(self):
        path = build_instance()
        assert select_pulse_kind(path,
                                 InternalOpen(2, PULL_DOWN, 1e3)) == "l"

    def test_external_defaults_to_h(self):
        path = build_instance()
        assert select_pulse_kind(path, ExternalOpen(2, 1e3)) == "h"

    def test_internal_bridging_on_nand(self):
        path = build_instance(gate_kinds=NAND_CHAIN)
        assert select_pulse_kind(
            path, InternalBridgingFault(2, 1e3)) == "l"


class TestKindSelectionElectrically:
    """The wrong kind lets the fault escape; the right kind kills the
    pulse — verified on real transients."""

    def test_right_kind_shrinks_wrong_kind_widens(self):
        fault = InternalOpen(2, PULL_UP, 6e3)
        w = {}
        for kind in ("h", "l"):
            faulty = build_instance(fault=fault)
            w[kind], _ = measure_output_pulse(faulty, 0.42e-9, kind=kind,
                                              dt=DT)
            healthy = build_instance()
            w[kind + "_ff"], _ = measure_output_pulse(
                healthy, 0.42e-9, kind=kind, dt=DT)
        assert w["h"] < w["h_ff"]       # right kind: shrinks (here: dies)
        assert w["l"] > w["l_ff"]       # wrong kind: widens -> escapes

    def test_internal_bridging_right_kind_shrinks(self):
        fault = InternalBridgingFault(2, 3e3)
        faulty = build_instance(fault=fault, gate_kinds=NAND_CHAIN)
        healthy = build_instance(gate_kinds=NAND_CHAIN)
        w_f, _ = measure_output_pulse(faulty, 0.42e-9, kind="l", dt=DT)
        w_h, _ = measure_output_pulse(healthy, 0.42e-9, kind="l", dt=DT)
        assert w_f < w_h


class TestEstimateRMin:
    def test_bisection_brackets_detection(self):
        samples = sample_population(2, base_seed=5)
        from repro.core import calibrate_pulse_test
        cal = calibrate_pulse_test(samples, dt=DT)

        def family(r):
            return ExternalOpen(2, r)

        r_min = estimate_r_min(family, cal.omega_in, cal.detector,
                               dt=DT, rel_tol=0.1)
        assert r_min is not None
        assert 1e3 < r_min < 100e3

    def test_undetectable_returns_none(self):
        from repro.core import PulseDetector

        def family(r):
            return ExternalOpen(2, r)

        # a 1 fs threshold can never flag anything that still transitions
        detector = PulseDetector(1e-15)
        r_min = estimate_r_min(family, 0.45e-9, detector, dt=DT,
                               r_hi=5e3)
        assert r_min is None


class TestGeneratePulseTest:
    def test_full_flow_internal_open(self):
        samples = sample_population(2, base_seed=5)

        def family(r):
            return InternalOpen(2, PULL_UP, r)

        test = generate_pulse_test(samples, family, dt=DT)
        assert test.kind == "h"
        assert test.omega_in > 0
        assert test.r_min is not None
        # internal opens are potent: detected well below 100k
        assert test.r_min < 20e3
