"""Coverage computation tests using synthetic raw measurements.

Coverage logic is pure arithmetic over raw (w_out or delay) matrices, so
these tests run without any electrical simulation.
"""

import math

import pytest

from repro.core import (CoverageCurve, PulseDetector, delay_coverage,
                        pulse_coverage)
from repro.core.calibration import PulseTestCalibration
from repro.core.coverage import (delay_is_all_finite,
                                 detected_fraction_is_monotonic)
from repro.dft import DelayFaultTest, FlipFlopTiming
from repro.montecarlo import sample_population


def make_calibration(omega_in=0.45e-9, omega_th=0.35e-9):
    return PulseTestCalibration(
        omega_in, PulseDetector(omega_th), nominal_curve=None,
        fault_free_wouts=[omega_th * 1.1] * 3, sensing_tolerance=0.1)


class TestPulseCoverage:
    def test_full_dampening_gives_full_coverage(self):
        samples = sample_population(3)
        resistances = [1e3, 2e3]
        raw = [[0.0, 0.0]] * 3
        result = pulse_coverage(raw, samples, resistances,
                                make_calibration())
        assert result.curve("1.0*w_th").coverage == [1.0, 1.0]

    def test_healthy_widths_give_zero_coverage(self):
        samples = sample_population(3)
        raw = [[0.45e-9, 0.45e-9]] * 3
        result = pulse_coverage(raw, samples, [1e3, 2e3],
                                make_calibration())
        assert result.curve("1.0*w_th").coverage == [0.0, 0.0]

    def test_threshold_factor_orders_coverage(self):
        samples = sample_population(4)
        # widths straddling the threshold band
        raw = [[0.34e-9], [0.36e-9], [0.32e-9], [0.40e-9]]
        result = pulse_coverage(raw, samples, [1e3], make_calibration())
        c_low = result.curve("0.9*w_th").coverage[0]
        c_mid = result.curve("1.0*w_th").coverage[0]
        c_high = result.curve("1.1*w_th").coverage[0]
        assert c_low <= c_mid <= c_high

    def test_labels(self):
        samples = sample_population(2)
        result = pulse_coverage([[0.0]] * 2, samples, [1e3],
                                make_calibration())
        assert result.labels() == ["0.9*w_th", "1.0*w_th", "1.1*w_th"]


class TestDelayCoverage:
    def make_test(self, t_star=1e-9):
        return DelayFaultTest(t_star, FlipFlopTiming(0.0, 0.0))

    def test_slow_paths_detected(self):
        samples = sample_population(2)
        raw = [[2e-9], [2e-9]]
        result = delay_coverage(raw, samples, [1e3], self.make_test())
        assert result.curve("1.0*T").coverage == [1.0]

    def test_fast_paths_pass(self):
        samples = sample_population(2)
        raw = [[0.5e-9], [0.5e-9]]
        result = delay_coverage(raw, samples, [1e3], self.make_test())
        assert result.curve("1.0*T").coverage == [0.0]

    def test_infinite_delay_detected_at_any_period(self):
        samples = sample_population(1)
        raw = [[math.inf]]
        result = delay_coverage(raw, samples, [1e3], self.make_test())
        assert result.curve("1.1*T").coverage == [1.0]

    def test_period_factor_orders_coverage(self):
        samples = sample_population(3)
        raw = [[0.95e-9], [1.05e-9], [1.15e-9]]
        result = delay_coverage(raw, samples, [1e3], self.make_test())
        c9 = result.curve("0.9*T").coverage[0]
        c10 = result.curve("1.0*T").coverage[0]
        c11 = result.curve("1.1*T").coverage[0]
        assert c9 >= c10 >= c11


class TestCoverageCurve:
    def test_minimum_detectable_r(self):
        curve = CoverageCurve("x", [1e3, 2e3, 4e3], [0, 2, 4], 4)
        assert curve.minimum_detectable_r() == 4e3
        assert curve.minimum_detectable_r(target=0.5) == 2e3

    def test_minimum_detectable_r_none(self):
        curve = CoverageCurve("x", [1e3], [2], 4)
        assert curve.minimum_detectable_r() is None

    def test_confidence_intervals_bracket_coverage(self):
        curve = CoverageCurve("x", [1e3, 2e3], [1, 4], 4)
        for (lo, hi), c in zip(curve.confidence_intervals(),
                               curve.coverage):
            assert lo <= c <= hi

    def test_coverage_derived_from_hits(self):
        curve = CoverageCurve("x", [1e3, 2e3], [1, 3], 4)
        assert curve.hits == [1, 3]
        assert curve.coverage == [0.25, 0.75]

    def test_confidence_intervals_use_exact_hit_counts(self):
        """The intervals must come from the stored integer counts, not
        a reconstruction from the float ratio (round(0.375*4) banker's-
        rounds to 2, silently shifting the interval)."""
        from repro.montecarlo import wilson_interval

        curve = CoverageCurve("x", [1e3], [3], 8)
        assert curve.confidence_intervals() == [wilson_interval(3, 8)]

    def test_rejects_fractional_hit_counts(self):
        """Regression: the old float-ratio constructor silently accepted
        coverage values that correspond to no integer hit count; now
        they are an error at construction time."""
        with pytest.raises(ValueError):
            CoverageCurve("x", [1e3], [1.5], 4)

    def test_rejects_out_of_range_hits(self):
        with pytest.raises(ValueError):
            CoverageCurve("x", [1e3], [5], 4)
        with pytest.raises(ValueError):
            CoverageCurve("x", [1e3], [-1], 4)

    def test_accepts_integral_floats(self):
        """Whole-number floats (e.g. from JSON round-trips) coerce."""
        curve = CoverageCurve("x", [1e3], [2.0], 4)
        assert curve.hits == [2]
        assert curve.coverage == [0.5]

    def test_monotonicity_helper(self):
        up = CoverageCurve("x", [1, 2, 3], [0, 2, 4], 4)
        down = CoverageCurve("x", [1, 2, 3], [4, 2, 0], 4)
        assert detected_fraction_is_monotonic(up)
        assert not detected_fraction_is_monotonic(down)

    def test_all_finite_helper(self):
        assert delay_is_all_finite([[1e-9, 2e-9]])
        assert not delay_is_all_finite([[1e-9, math.inf]])


class TestVariableNCoverageCurve:
    def test_per_point_populations(self):
        curve = CoverageCurve("x", [1e3, 2e3, 4e3], [2, 6, 16],
                              [8, 8, 16])
        assert curve.ns == [8, 8, 16]
        assert curve.coverage == [0.25, 0.75, 1.0]
        assert not curve.uniform
        assert curve.n_samples == 16  # compat: the largest population

    def test_uniform_int_still_uniform(self):
        curve = CoverageCurve("x", [1e3, 2e3], [1, 2], 4)
        assert curve.uniform
        assert curve.ns == [4, 4]

    def test_intervals_use_per_point_n(self):
        from repro.montecarlo import wilson_interval

        curve = CoverageCurve("x", [1e3, 2e3], [2, 2], [4, 16])
        assert curve.confidence_intervals() == [wilson_interval(2, 4),
                                                wilson_interval(2, 16)]
        hw = curve.halfwidths()
        assert hw[1] < hw[0]  # more samples, tighter interval

    def test_hits_validated_against_own_n(self):
        # 5 hits is fine for the n=8 point but not for the n=4 point
        CoverageCurve("x", [1e3, 2e3], [5, 0], [8, 4])
        with pytest.raises(ValueError):
            CoverageCurve("x", [1e3, 2e3], [0, 5], [8, 4])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CoverageCurve("x", [1e3, 2e3], [1, 1], [4])

    def test_non_positive_n_rejected(self):
        with pytest.raises(ValueError):
            CoverageCurve("x", [1e3], [0], [0])
        with pytest.raises(ValueError):
            CoverageCurve("x", [1e3], [0], [2.5])

    def test_repr_shows_range(self):
        curve = CoverageCurve("x", [1e3, 2e3], [0, 0], [4, 16])
        assert "n=4..16" in repr(curve)


class TestLegacyCallablePath:
    """The legacy ``r -> FaultSpec`` callable path must honour the same
    measurement settings as the FaultSpec path — it used to silently
    drop ``adaptive``/``lte_tol``/``solver`` and ignore the engine."""

    PATH = dict(gate_kinds=("inv",) * 3)

    def _sweep(self, **kwargs):
        from repro.core.coverage import sweep_pulse_measurements
        from repro.faults import ExternalOpen
        from repro.montecarlo import sample_population

        samples = sample_population(1, base_seed=3)
        return sweep_pulse_measurements(
            samples, lambda r: ExternalOpen(2, r), [8e3], 0.40e-9,
            dt=8e-12, **dict(self.PATH, **kwargs))

    def test_adaptive_honoured(self):
        from repro.runtime import stats_scope

        with stats_scope() as stats:
            self._sweep(adaptive=True)
        assert stats.total("adaptive_runs") > 0

    def test_solver_honoured(self):
        from repro.runtime import stats_scope
        from repro.spice.mna import scipy_available

        if not scipy_available():
            pytest.skip("reuse solver needs scipy")
        with stats_scope() as exact:
            self._sweep(solver="exact")
        assert exact.total("lu_reuses") == 0
        with stats_scope() as reuse:
            self._sweep(solver="reuse")
        assert reuse.total("lu_reuses") > 0

    def test_batched_engine_rejected(self):
        with pytest.raises(ValueError, match="FaultSpec"):
            self._sweep(engine="batched")

    def test_delay_path_rejects_batched_too(self):
        from repro.core.coverage import sweep_delay_measurements
        from repro.faults import ExternalOpen
        from repro.montecarlo import sample_population

        samples = sample_population(1, base_seed=3)
        with pytest.raises(ValueError, match="FaultSpec"):
            sweep_delay_measurements(samples, lambda r: ExternalOpen(2, r),
                                     [8e3], engine="batched", **self.PATH)


class TestChunkSignature:
    """Mis-grouped lockstep chunks must fail loudly: the chunk tasks
    apply the first payload's settings to every sample."""

    def _payloads(self, **overrides):
        from repro.core.coverage import build_sweep_payloads
        from repro.faults import ExternalOpen
        from repro.montecarlo import sample_population

        samples = sample_population(1, base_seed=3)
        spec = dict(measure="pulse", omega_in=0.40e-9, kind="h")
        spec.update(overrides)
        payloads, _ = build_sweep_payloads(
            samples, ExternalOpen(2, 8e3), [8e3], dt=8e-12,
            engine="batched", with_keys=False, **spec)
        return payloads

    def test_mismatched_omega_in_rejected(self):
        from repro.core.coverage import _sweep_chunk_task

        chunk = self._payloads() + self._payloads(omega_in=0.50e-9)
        with pytest.raises(ValueError, match="omega_in"):
            _sweep_chunk_task(chunk)

    def test_mismatched_solver_rejected(self):
        from repro.core.coverage import _sweep_chunk_task

        chunk = (self._payloads() + self._payloads())
        chunk[1] = dict(chunk[1], solver="exact"
                        if chunk[1]["solver"] != "exact" else "reuse")
        with pytest.raises(ValueError, match="solver"):
            _sweep_chunk_task(chunk)

    def test_mismatched_fault_rejected(self):
        from repro.core.coverage import _sweep_chunk_task
        from repro.faults import BridgingFault

        chunk = self._payloads() + self._payloads()
        chunk[1] = dict(chunk[1], fault=BridgingFault(2, 8e3))
        with pytest.raises(ValueError, match="fault"):
            _sweep_chunk_task(chunk)

    def test_compatible_chunks_pass_the_gate(self):
        """Same settings, different samples: the signature must not
        trip (faults compare by value, not identity — coalesced jobs
        build separate but equal prototypes)."""
        from repro.core.pulse import assert_chunk_compatible
        from repro.core.coverage import SWEEP_CHUNK_FIELDS

        chunk = self._payloads() + self._payloads()
        assert_chunk_compatible(chunk, SWEEP_CHUNK_FIELDS)


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        from repro.core.coverage import sweep_pulse_measurements
        from repro.faults import ExternalOpen

        samples = sample_population(2)
        with pytest.raises(ValueError):
            sweep_pulse_measurements(samples, ExternalOpen(2, 2e3),
                                     [2e3], 0.4e-9, engine="vector")

    def test_batched_sweep_matches_scalar(self):
        """The routed batched sweep reproduces the scalar rows (the
        full property suite lives in tests/spice/test_batch_engine.py;
        this pins the coverage-layer routing)."""
        from repro.core.coverage import sweep_pulse_measurements
        from repro.faults import ExternalOpen

        samples = sample_population(2, base_seed=1)
        fault = ExternalOpen(2, 8e3)
        scalar = sweep_pulse_measurements(samples, fault, [8e3],
                                          0.40e-9, dt=8e-12)
        batched = sweep_pulse_measurements(samples, fault, [8e3],
                                           0.40e-9, dt=8e-12,
                                           engine="batched",
                                           batch_size=2)
        for srow, brow in zip(scalar, batched):
            for a, b in zip(srow, brow):
                assert b == pytest.approx(a, abs=1e-9)
