"""Experiment-driver unit tests (config plumbing and the cheap parts;
the heavy sweeps are exercised by tests/integration and benchmarks)."""

import numpy as np
import pytest

from repro.core import ExperimentConfig, run_waveform_experiment
from repro.core.experiments import _pick_fault_site


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.n_samples == 16
        assert len(config.rop_resistances) == 10
        assert config.fault_stage == 2

    def test_fast_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        config = ExperimentConfig.from_env()
        assert config.n_samples == 5
        assert config.dt == pytest.approx(4e-12)

    def test_env_overrides_beat_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        config = ExperimentConfig.from_env(n_samples=9)
        assert config.n_samples == 9

    def test_no_fast_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        config = ExperimentConfig.from_env()
        assert config.n_samples == 16

    def test_samples_deterministic(self):
        config = ExperimentConfig(n_samples=3, seed=5)
        a = config.samples()
        b = config.samples()
        assert [s.seed for s in a] == [s.seed for s in b]

    def test_resistance_grids_sorted(self):
        config = ExperimentConfig()
        assert config.rop_resistances == sorted(config.rop_resistances)
        assert config.bridging_resistances == sorted(
            config.bridging_resistances)


class TestWaveformExperimentDriver:
    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            run_waveform_experiment("cosmic_ray", 1e3)

    def test_result_structure(self):
        config = ExperimentConfig(dt=6e-12)
        exp = run_waveform_experiment("internal_rop", 8e3, config=config)
        assert exp.nodes[0] == "a0"
        assert exp.nodes[-1] == "a7"
        assert exp.w_in == pytest.approx(0.40e-9)
        # both waveforms cover the same nodes
        for node in exp.nodes:
            assert node in exp.fault_free
            assert node in exp.faulty


class TestFaultSitePicker:
    def test_picks_gate_output_with_paths(self):
        from repro.logic import generate_c432_like, paths_through
        netlist = generate_c432_like()
        net = _pick_fault_site(netlist)
        assert netlist.gate_driving(net) is not None
        assert len(paths_through(netlist, net, max_paths=4)) >= 4

    def test_deterministic(self):
        from repro.logic import generate_c432_like
        assert (_pick_fault_site(generate_c432_like())
                == _pick_fault_site(generate_c432_like()))
