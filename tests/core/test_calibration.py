"""Calibration tests (electrical, small population, coarse step)."""

import pytest

from repro.core import (calibrate_delay_test, calibrate_pulse_test,
                        measure_output_pulse, build_instance)

DT = 4e-12


@pytest.fixture(scope="module")
def pulse_cal(small_population_module, tech_module):
    return calibrate_pulse_test(small_population_module, tech=tech_module,
                                dt=DT)


@pytest.fixture(scope="module")
def small_population_module():
    from repro.montecarlo import sample_population
    return sample_population(3, base_seed=11)


@pytest.fixture(scope="module")
def tech_module():
    from repro.cells import default_technology
    return default_technology()


class TestPulseCalibration:
    def test_omega_in_in_asymptotic_region(self, pulse_cal):
        onset = pulse_cal.nominal_curve.region3_onset()
        assert pulse_cal.omega_in >= onset

    def test_no_false_positive_at_worst_case(self, pulse_cal):
        # every fault-free instance clears the 1.1x-threshold detector
        detector = pulse_cal.detector
        for w_out in pulse_cal.fault_free_wouts:
            assert detector.transition_seen(w_out, factor=1.1)

    def test_threshold_tight_against_weakest(self, pulse_cal):
        weakest = min(pulse_cal.fault_free_wouts)
        assert pulse_cal.omega_th == pytest.approx(weakest / 1.1)

    def test_forced_omega_in_respected(self, small_population_module,
                                       tech_module):
        cal = calibrate_pulse_test(small_population_module,
                                   tech=tech_module, dt=DT,
                                   omega_in=0.5e-9)
        assert cal.omega_in == 0.5e-9

    def test_attenuation_region_omega_rejected(self, small_population_module,
                                               tech_module):
        # forcing omega_in into region 1 (fully dampened) must fail the
        # yield constraint loudly
        with pytest.raises(ValueError):
            calibrate_pulse_test(small_population_module, tech=tech_module,
                                 dt=DT, omega_in=0.15e-9)


class TestDelayCalibration:
    def test_returns_test_and_delays(self, small_population_module,
                                     tech_module):
        test, delays = calibrate_delay_test(small_population_module,
                                            tech=tech_module, dt=DT)
        assert len(delays) == len(small_population_module)
        assert test.t_star > max(delays)

    def test_no_false_positives_by_construction(self, small_population_module,
                                                tech_module):
        test, delays = calibrate_delay_test(small_population_module,
                                            tech=tech_module, dt=DT)
        for d, s in zip(delays, small_population_module):
            assert not test.detects(d, sample=s, t_factor=0.9)
