"""Calibration tests (electrical, small population, coarse step)."""

import pytest

from repro.core import (calibrate_delay_test, calibrate_pulse_test,
                        measure_output_pulse, build_instance)

DT = 4e-12


@pytest.fixture(scope="module")
def pulse_cal(small_population_module, tech_module):
    return calibrate_pulse_test(small_population_module, tech=tech_module,
                                dt=DT)


@pytest.fixture(scope="module")
def small_population_module():
    from repro.montecarlo import sample_population
    return sample_population(3, base_seed=11)


@pytest.fixture(scope="module")
def tech_module():
    from repro.cells import default_technology
    return default_technology()


class TestPulseCalibration:
    def test_omega_in_in_asymptotic_region(self, pulse_cal):
        onset = pulse_cal.nominal_curve.region3_onset()
        assert pulse_cal.omega_in >= onset

    def test_no_false_positive_at_worst_case(self, pulse_cal):
        # every fault-free instance clears the 1.1x-threshold detector
        detector = pulse_cal.detector
        for w_out in pulse_cal.fault_free_wouts:
            assert detector.transition_seen(w_out, factor=1.1)

    def test_threshold_tight_against_weakest(self, pulse_cal):
        weakest = min(pulse_cal.fault_free_wouts)
        assert pulse_cal.omega_th == pytest.approx(weakest / 1.1)

    def test_forced_omega_in_respected(self, small_population_module,
                                       tech_module):
        cal = calibrate_pulse_test(small_population_module,
                                   tech=tech_module, dt=DT,
                                   omega_in=0.5e-9)
        assert cal.omega_in == 0.5e-9

    def test_attenuation_region_omega_rejected(self, small_population_module,
                                               tech_module):
        # forcing omega_in into region 1 (fully dampened) must fail the
        # yield constraint loudly
        with pytest.raises(ValueError):
            calibrate_pulse_test(small_population_module, tech=tech_module,
                                 dt=DT, omega_in=0.15e-9)


class TestNominalTransferCache:
    """`_nominal_transfer` must key its memoised curve on the time-grid
    and solver settings: an exact-solver curve used to be served to a
    reuse-solver calibration, and an adaptive calibration picked its
    omega_in* from a fixed-grid curve."""

    GRID = [0.30e-9, 0.50e-9]
    PATH = dict(gate_kinds=("inv",) * 3)

    def _characterize(self, runtime, calls, **kwargs):
        from repro.core.calibration import _nominal_transfer
        from repro.montecarlo import NominalModel

        def builder():
            calls.append(1)
            return build_instance(sample=NominalModel(),
                                  **dict(self.PATH))

        return _nominal_transfer(builder, self.GRID, "h", DT, None, None,
                                 dict(self.PATH), runtime, **kwargs)

    def _runtime(self, tmp_path):
        from repro.runtime import Runtime

        return Runtime(cache=str(tmp_path / "cache"))

    def test_solver_modes_do_not_alias(self, tmp_path):
        from repro.spice.mna import scipy_available

        if not scipy_available():
            pytest.skip("reuse solver needs scipy (degrades to exact, "
                        "which aliases by design)")
        runtime = self._runtime(tmp_path)
        calls = []
        self._characterize(runtime, calls, solver="exact")
        first = len(calls)
        assert first > 0
        # a different solver must miss the cache and recharacterise
        self._characterize(runtime, calls, solver="reuse")
        assert len(calls) == 2 * first
        # ... and the same solver must now hit
        self._characterize(runtime, calls, solver="exact")
        assert len(calls) == 2 * first

    def test_adaptive_does_not_alias_fixed_grid(self, tmp_path):
        runtime = self._runtime(tmp_path)
        calls = []
        self._characterize(runtime, calls, solver="exact")
        first = len(calls)
        self._characterize(runtime, calls, solver="exact", adaptive=True)
        assert len(calls) == 2 * first

    def test_fixed_grid_exact_keeps_pre_tag_key(self, tmp_path):
        """The exact-solver fixed-grid curve must land under the
        pre-existing (tag-free) key format so old caches stay warm."""
        from repro.cells import default_technology
        from repro.runtime import stable_hash

        runtime = self._runtime(tmp_path)
        self._characterize(runtime, [], solver="exact")
        old_key = stable_hash("nominal-transfer", default_technology(),
                              None, [float(w) for w in self.GRID], "h",
                              DT, dict(self.PATH))
        assert runtime.cache.get(old_key)  # raises CacheMiss if renamed

    def test_adaptive_curve_matches_direct_characterization(self):
        from repro.core import characterize_transfer
        from repro.montecarlo import NominalModel

        curve = self._characterize(None, [], adaptive=True,
                                   solver="exact")
        direct = characterize_transfer(
            lambda: build_instance(sample=NominalModel(),
                                   **dict(self.PATH)),
            self.GRID, kind="h", dt=DT, adaptive=True, solver="exact")
        assert list(curve.w_out) == pytest.approx(list(direct.w_out),
                                                  abs=1e-15)


class TestCalibrationChunkSignature:
    """Mis-grouped fault-free lockstep chunks must fail loudly."""

    def _payload(self, **overrides):
        base = dict(sample=None, fault=None, tech=None, dt=DT,
                    adaptive=False, lte_tol=None, solver="exact",
                    omega_in=0.40e-9, kind="h", path_kwargs={})
        base.update(overrides)
        return base

    def test_pulse_chunk_rejects_mixed_omega_in(self):
        from repro.core.calibration import _fault_free_pulse_chunk_task

        with pytest.raises(ValueError, match="omega_in"):
            _fault_free_pulse_chunk_task(
                [self._payload(), self._payload(omega_in=0.50e-9)])

    def test_delay_chunk_rejects_mixed_dt(self):
        from repro.core.calibration import _fault_free_delay_chunk_task

        with pytest.raises(ValueError, match="dt"):
            _fault_free_delay_chunk_task(
                [self._payload(direction="rise"),
                 self._payload(direction="rise", dt=2 * DT)])


class TestDelayCalibration:
    def test_returns_test_and_delays(self, small_population_module,
                                     tech_module):
        test, delays = calibrate_delay_test(small_population_module,
                                            tech=tech_module, dt=DT)
        assert len(delays) == len(small_population_module)
        assert test.t_star > max(delays)

    def test_no_false_positives_by_construction(self, small_population_module,
                                                tech_module):
        test, delays = calibrate_delay_test(small_population_module,
                                            tech=tech_module, dt=DT)
        for d, s in zip(delays, small_population_module):
            assert not test.detects(d, sample=s, t_factor=0.9)
