"""Measurement-primitive tests (electrical; kept coarse and few)."""

import math

import pytest

from repro.core import (build_instance, measure_output_pulse,
                        measure_path_delay, output_pulse_polarity,
                        simulation_window)
from repro.faults import ExternalOpen, InternalOpen, PULL_UP
from repro.montecarlo import NominalModel, VariationModel

DT = 4e-12


class TestBuildInstance:
    def test_nominal_instance(self):
        path = build_instance()
        assert path.n_gates == 7

    def test_fault_injected(self):
        path = build_instance(fault=ExternalOpen(2, 8e3))
        assert "R_fault" in path.circuit

    def test_sample_perturbs_devices(self):
        nominal = build_instance(sample=NominalModel())
        varied = build_instance(sample=VariationModel(seed=3))
        mn_nom = nominal.circuit.element("g1.MN").params
        mn_var = varied.circuit.element("g1.MN").params
        assert mn_var.kp != pytest.approx(mn_nom.kp)

    def test_sample_is_reproducible(self):
        a = build_instance(sample=VariationModel(seed=3))
        b = build_instance(sample=VariationModel(seed=3))
        assert a.circuit.element("g4.MP").params.vt == pytest.approx(
            b.circuit.element("g4.MP").params.vt)

    def test_path_kwargs_forwarded(self):
        path = build_instance(gate_kinds=("inv", "inv", "inv"))
        assert path.n_gates == 3


class TestPolarity:
    def test_seven_inverters_h_pulse(self):
        path = build_instance()
        # input idles 0, output idles 1 -> output pulse goes low
        assert output_pulse_polarity(path, "h") == "low"

    def test_seven_inverters_l_pulse(self):
        path = build_instance()
        assert output_pulse_polarity(path, "l") == "high"

    def test_even_chain_h_pulse(self):
        path = build_instance(gate_kinds=("inv",) * 6,
                              side_fanout_stages=(2,))
        assert output_pulse_polarity(path, "h") == "high"


class TestSimulationWindow:
    def test_window_covers_all_terms(self):
        path = build_instance()
        w = simulation_window(path, w_in=0.4e-9, stimulus_delay=0.2e-9)
        assert w > 0.4e-9 + 0.2e-9 + path.n_gates * 0.3e-9


class TestMeasurements:
    def test_wide_pulse_measured(self):
        path = build_instance()
        w_out, wf = measure_output_pulse(path, 0.45e-9, dt=DT)
        assert w_out == pytest.approx(0.45e-9, rel=0.15)
        assert path.output_node in wf

    def test_narrow_pulse_dampened(self):
        path = build_instance()
        w_out, _ = measure_output_pulse(path, 0.15e-9, dt=DT)
        assert w_out == 0.0

    def test_record_all_keeps_internal_nodes(self):
        path = build_instance()
        _, wf = measure_output_pulse(path, 0.45e-9, dt=DT, record_all=True)
        assert "a3" in wf

    def test_delay_finite_and_sane(self):
        path = build_instance()
        d, _ = measure_path_delay(path, "rise", dt=DT)
        assert 0.3e-9 < d < 2.0e-9

    def test_delay_rise_fall_differ(self):
        path = build_instance()
        d_r, _ = measure_path_delay(path, "rise", dt=DT)
        d_f, _ = measure_path_delay(path, "fall", dt=DT)
        assert d_r != pytest.approx(d_f, rel=1e-3)

    def test_delay_increases_with_internal_open(self):
        healthy = build_instance()
        d0, _ = measure_path_delay(healthy, "rise", dt=DT)
        faulty = build_instance(fault=InternalOpen(2, PULL_UP, 8e3))
        d1, _ = measure_path_delay(faulty, "rise", dt=DT)
        assert d1 > d0 + 0.1e-9

    def test_delay_inf_when_output_stuck(self):
        # A gigantic internal open on both networks is approximated by a
        # pull-up open so large the rising edge never completes in window.
        faulty = build_instance(fault=InternalOpen(2, PULL_UP, 10e6))
        d, _ = measure_path_delay(faulty, "rise", dt=DT)
        assert math.isinf(d)
