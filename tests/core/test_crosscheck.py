"""Logic-to-electrical cross-check tests."""

import pytest

from repro.core import (chain_kinds_for_path, electrical_path_for,
                        validate_path_electrically)
from repro.core.crosscheck import refine_omega_in_electrically
from repro.logic import c17, characterize_path_for_test

DT = 5e-12


class TestKindMapping:
    def test_c17_path_maps_to_nands(self):
        kinds = chain_kinds_for_path(c17(), ["G1", "G10", "G22"])
        assert kinds == ("nand2", "nand2")

    def test_arity_capped_at_three(self):
        from repro.logic.netlist import LogicNetlist
        n = LogicNetlist()
        for pi in "abcd":
            n.add_input(pi)
        n.add_gate("nand", ["a", "b", "c", "d"], "y")
        n.add_output("y")
        assert chain_kinds_for_path(n, ["a", "y"]) == ("nand3",)

    def test_not_and_buf_map_to_inverter(self):
        from repro.logic.netlist import LogicNetlist
        n = LogicNetlist()
        n.add_input("a")
        n.add_gate("not", ["a"], "x")
        n.add_gate("buf", ["x"], "y")
        n.add_output("y")
        assert chain_kinds_for_path(n, ["a", "x", "y"]) == ("inv", "inv")


class TestElectricalTranslation:
    def test_structure_matches_path_length(self):
        path = electrical_path_for(c17(), ["G1", "G10", "G22"])
        assert path.n_gates == 2
        assert path.cell_at(1).kind == "nand2"

    def test_side_inputs_tied_noncontrolling(self):
        from repro.spice import operating_point
        path = electrical_path_for(c17(), ["G1", "G10", "G22"])
        op = operating_point(path.circuit)
        # statically sensitized: alternating rail values along the path
        vdd = path.tech.vdd
        assert abs(op["a2"] - path.idle_level(2, 0) * vdd) < 0.05


class TestValidation:
    def test_c17_recommendation_validates(self):
        n = c17()
        path = ["G1", "G10", "G22"]
        info = characterize_path_for_test(n, path)
        ok, w_out, _ = validate_path_electrically(
            n, path, info["omega_in"], dt=DT)
        assert ok
        assert w_out > 0.0

    def test_tiny_width_fails_validation(self):
        n = c17()
        ok, w_out, _ = validate_path_electrically(
            n, ["G1", "G10", "G22"], 30e-12, dt=DT)
        assert not ok
        assert w_out == 0.0


class TestRefinement:
    def test_refined_width_propagates(self):
        n = c17()
        path = ["G3", "G11", "G16", "G23"]
        info = characterize_path_for_test(n, path)
        omega_in, w_out, _ = refine_omega_in_electrically(
            n, path, info["omega_in"], dt=DT)
        assert w_out > 0.0
        ok, _, _ = validate_path_electrically(n, path, omega_in, dt=DT)
        assert ok

    def test_refinement_never_below_electrical_threshold(self):
        n = c17()
        path = ["G1", "G10", "G22"]
        info = characterize_path_for_test(n, path)
        omega_in, w_out, chain = refine_omega_in_electrically(
            n, path, info["omega_in"], dt=DT, margin_factor=1.4)
        from repro.core import minimum_propagatable_width
        w_min = minimum_propagatable_width(chain, lo=0.05e-9, hi=0.8e-9,
                                           dt=DT)
        assert omega_in >= w_min
