"""Adaptive-precision coverage engine tests.

The allocation and refinement logic is exercised against a synthetic
measurer (deterministic detection as a function of (sample, R), zero
electrical cost); one small electrical test at the bottom pins the
real wiring through the runtime.
"""

import math

import pytest

from repro.core.adaptive_coverage import (AdaptiveSweepResult, PointState,
                                          adaptive_sweep, subsample_grid)
from repro.faults import ExternalOpen
from repro.montecarlo import wilson_halfwidth

FAULT = ExternalOpen(2, 1e3)

GRID = [500.0 * (80.0 ** (i / 9.0)) for i in range(10)]  # 500..40k


def decide(value, sample):
    return value > 0.5


class StepMeasurer:
    """Detects iff r >= per-sample threshold around ``r50``."""

    def __init__(self, r50, spread=0.3):
        self.r50 = r50
        self.spread = spread
        self.requested = 0
        self.calls = 0

    def threshold(self, index):
        frac = (index * 0.37) % 1.0  # deterministic pseudo-uniform
        return self.r50 * (1.0 + self.spread * (2.0 * frac - 1.0))

    def measure(self, requests):
        requests = list(requests)
        self.requested += len(requests)
        self.calls += 1
        return [1.0 if r >= self.threshold(i) else 0.0
                for i, r in requests]


class FallingMeasurer(StepMeasurer):
    """Coverage decays with R (the bridging C_del shape)."""

    def measure(self, requests):
        requests = list(requests)
        self.requested += len(requests)
        self.calls += 1
        return [1.0 if r <= self.threshold(i) else 0.0
                for i, r in requests]


def sweep(measurer, samples=64, **kwargs):
    kwargs.setdefault("ci_width", 0.15)
    kwargs.setdefault("min_wave", 8)
    kwargs.setdefault("refine_rel_tol", 0.1)
    return adaptive_sweep(list(range(samples)), FAULT, GRID, decide,
                          measurer=measurer, **kwargs)


class TestSubsampleGrid:
    def test_keeps_endpoints(self):
        grid = subsample_grid(GRID, 4)
        assert grid[0] == min(GRID)
        assert grid[-1] == max(GRID)
        assert len(grid) == 4

    def test_small_grid_unchanged(self):
        assert subsample_grid([1.0, 2.0], 4) == [1.0, 2.0]

    def test_deduplicates_and_sorts(self):
        assert subsample_grid([2.0, 1.0, 2.0], 5) == [1.0, 2.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            subsample_grid([], 4)


class TestSequentialAllocation:
    def test_easy_points_stop_early(self):
        """Far from the crossing every sample agrees: the Wilson
        interval collapses after few waves and the full population is
        never spent there."""
        m = StepMeasurer(8e3)
        result = sweep(m, samples=64)
        by_r = {p.r: p for p in result.points}
        assert by_r[min(GRID)].n < 64
        assert by_r[max(GRID)].n < 64

    def test_stopping_rule_met_at_every_grid_point(self):
        m = StepMeasurer(8e3)
        result = sweep(m, samples=64)
        for p in result.points:
            if p.refined:
                continue  # refinement points may stop on exclusion
            hits = p.hits(decide, result.samples)
            assert (p.n == 64
                    or wilson_halfwidth(hits, p.n) <= 0.15)

    def test_waves_double_from_min_wave(self):
        m = StepMeasurer(8e3)
        result = sweep(m, samples=64, min_wave=4)
        # every per-point n is 4 * 2^k (capped at the population)
        for p in result.points:
            n = p.n
            while n % 2 == 0 and n > 4:
                n //= 2
            assert n in (1, 2, 4) or p.n == 64

    def test_population_cap_respected(self):
        m = StepMeasurer(8e3)
        result = sweep(m, samples=16)
        assert all(p.n <= 16 for p in result.points)

    def test_never_remeasures_a_sample(self):
        """Total requests equal the sum of per-point populations —
        wave escalation extends, never recomputes."""
        m = StepMeasurer(8e3)
        result = sweep(m, samples=64)
        assert m.requested == result.total_measurements

    def test_saves_vs_fixed_grid(self):
        m = StepMeasurer(8e3)
        result = sweep(m, samples=64)
        assert result.total_measurements < result.fixed_grid_measurements
        matched = result.matched_resolution_measurements(0.1)
        assert result.total_measurements < 0.7 * matched


class TestRefinement:
    def test_crossing_localised_to_tolerance(self):
        m = StepMeasurer(8e3, spread=0.0)  # sharp step at exactly 8k
        result = sweep(m, samples=32, refine_rel_tol=0.05)
        crossing = result.crossings[1.0]
        assert crossing["lo"] <= 8e3 <= crossing["hi"] * 1.05
        assert crossing["hi"] / crossing["lo"] <= 1.05 + 1e-9
        assert result.minimum_detectable_r(1.0) == crossing["detected_at"]

    def test_falling_curve_bracketed(self):
        """Bridging-shaped curves (coverage decays with R) refine the
        falling crossing; the detected side is the low-R side."""
        m = FallingMeasurer(8e3, spread=0.0)
        result = sweep(m, samples=32)
        crossing = result.crossings[1.0]
        assert crossing["detected_at"] == crossing["lo"]
        assert crossing["lo"] < 8e3 * 1.2

    def test_never_crossing_target_skipped(self):
        """A target the grid never reaches yields no crossing entry
        instead of a spurious bracket."""
        m = StepMeasurer(1e9)  # nothing ever detects
        result = sweep(m, samples=16)
        assert result.crossings == {}
        assert result.minimum_detectable_r(1.0) is None

    def test_all_detected_yields_no_bracket(self):
        m = StepMeasurer(1.0)  # everything always detects
        result = sweep(m, samples=16)
        assert result.crossings == {}

    def test_geometric_bisection_midpoints(self):
        """Refinement points sit at geometric means of their bracket —
        all inside the original R range."""
        m = StepMeasurer(8e3)
        result = sweep(m, samples=32)
        for p in result.points:
            assert min(GRID) <= p.r <= max(GRID)

    def test_refined_points_recorded(self):
        m = StepMeasurer(8e3)
        result = sweep(m, samples=32)
        assert any(p.refined for p in result.points)


class TestResultObject:
    def test_curves_share_raw_values(self):
        m = StepMeasurer(8e3)
        result = sweep(m, samples=32)
        curve = result.curve("1.0", decide)
        assert curve.resistances == result.resistances
        assert curve.ns == result.ns
        inverted = result.curve("inv", lambda v, s: not decide(v, s))
        assert all(a + b == n for a, b, n in
                   zip(curve.hits, inverted.hits, curve.ns))

    def test_raw_population_order(self):
        m = StepMeasurer(8e3)
        result = sweep(m, samples=32)
        raw = result.raw()
        for p in result.points:
            assert raw[p.r] == p.values
            # population order: sample i's value is measurer(i, r)
            for i, value in enumerate(p.values):
                assert value == m.measure([(i, p.r)])[0]

    def test_matched_resolution_accounting(self):
        m = StepMeasurer(8e3)
        result = sweep(m, samples=10)
        span = math.log(max(GRID) / min(GRID))
        expected = 10 * (1 + math.ceil(span / math.log(1.1)))
        assert result.matched_resolution_measurements(0.1) == expected

    def test_repr(self):
        assert "PointState" in repr(PointState(1e3))
        m = StepMeasurer(8e3)
        assert "AdaptiveSweepResult" in repr(sweep(m, samples=8))


class TestValidation:
    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            adaptive_sweep([], FAULT, GRID, decide,
                           measurer=StepMeasurer(8e3))

    def test_bad_ci_width_rejected(self):
        for width in (0.0, 0.5, -0.1):
            with pytest.raises(ValueError):
                sweep(StepMeasurer(8e3), ci_width=width)

    def test_bad_refine_tol_rejected(self):
        with pytest.raises(ValueError):
            sweep(StepMeasurer(8e3), refine_rel_tol=0.0)

    def test_legacy_callable_fault_rejected(self):
        """The runtime-backed measurer needs a picklable prototype."""
        with pytest.raises(TypeError, match="FaultSpec"):
            adaptive_sweep([1, 2], lambda r: ExternalOpen(2, r), GRID,
                           decide, measure="pulse", omega_in=0.4e-9,
                           kind="h")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            adaptive_sweep([1, 2], FAULT, GRID, decide,
                           engine="vector", measure="pulse",
                           omega_in=0.4e-9, kind="h")


class TestElectricalIntegration:
    """One tiny real sweep through the runtime: scalar engine, short
    inverter chain, coarse step.  Pins payload wiring, report folding
    and cache-backed wave resume."""

    PATH = dict(gate_kinds=("inv",) * 3)

    def _run(self, runtime=None, report=None):
        from repro.montecarlo import sample_population

        samples = sample_population(3, base_seed=5)
        return adaptive_sweep(
            samples, ExternalOpen(2, 2e3), [2e3, 30e3],
            lambda v, s: v <= 0.0,  # detected = pulse fully dampened
            ci_width=0.3, min_wave=2, refine_rel_tol=0.5,
            dt=8e-12, runtime=runtime, report=report,
            path_kwargs=self.PATH, measure="pulse", omega_in=0.40e-9,
            kind="h")

    def test_real_sweep_runs_and_reports(self):
        from repro.runtime import RunReport

        report = RunReport("adaptive-test")
        result = self._run(report=report)
        assert result.total_measurements > 0
        assert report.waves == result.waves
        assert report.completed == result.total_measurements

    def test_pool_waves_match_serial_counters(self):
        """Allocation decisions depend only on measured values, so the
        same tasks run under both executors and the folded solver
        counters must be identical (stats snapshots ship across the
        process boundary)."""
        from repro.runtime import (ProcessPoolExecutor, RunReport,
                                   Runtime, SerialExecutor)

        counters = ("newton_solves", "newton_iterations",
                    "ladder_retries", "lu_factorizations", "lu_reuses")
        serial_report = RunReport("serial")
        serial = self._run(runtime=Runtime(executor=SerialExecutor()),
                           report=serial_report)
        pool_report = RunReport("pool")
        pool = self._run(
            runtime=Runtime(executor=ProcessPoolExecutor(n_jobs=2,
                                                         retries=0)),
            report=pool_report)
        assert pool.raw() == serial.raw()
        assert pool_report.waves == serial_report.waves
        for name in counters:
            assert getattr(pool_report, name) == \
                getattr(serial_report, name), name

    def test_wave_resume_from_cache(self, tmp_path):
        from repro.runtime import RunReport, Runtime

        cold_report = RunReport("cold")
        runtime = Runtime(cache=str(tmp_path / "cache"))
        cold = self._run(runtime=runtime, report=cold_report)
        assert cold_report.cache_misses == cold.total_measurements

        warm_report = RunReport("warm")
        warm = self._run(runtime=Runtime(cache=str(tmp_path / "cache")),
                         report=warm_report)
        assert warm_report.cache_misses == 0
        assert warm_report.cache_hits == warm.total_measurements
        assert warm.raw() == cold.raw()
