"""Transfer-curve analysis tests.

The synthetic-curve tests exercise the region logic without electrical
simulation; the session-scoped fixture provides one real curve.
"""

import numpy as np
import pytest

from repro.core import (TransferCurve, minimum_propagatable_width,
                        recommended_w_in)
from repro.cells import build_path


def synthetic_curve():
    """Idealised three-region curve: dead to 0.2ns, ramp to 0.4, slope 1."""
    w_in = np.linspace(0.1e-9, 0.8e-9, 15)
    w_out = np.where(
        w_in <= 0.2e-9, 0.0,
        np.where(w_in < 0.4e-9,
                 (w_in - 0.2e-9) * 1.75,
                 w_in - 0.05e-9))
    return TransferCurve(w_in, w_out)


class TestRegionDetection:
    def test_dampened_limit(self):
        curve = synthetic_curve()
        assert curve.dampened_limit() == pytest.approx(0.2e-9, abs=0.06e-9)

    def test_region3_onset(self):
        curve = synthetic_curve()
        onset = curve.region3_onset()
        assert onset == pytest.approx(0.4e-9, abs=0.06e-9)

    def test_attenuation_span_ordered(self):
        start, end = synthetic_curve().attenuation_span()
        assert start < end

    def test_all_propagating_curve_has_no_dead_zone(self):
        w = np.linspace(0.1e-9, 0.5e-9, 5)
        curve = TransferCurve(w, w)
        assert curve.dampened_limit() == 0.0
        assert curve.region3_onset() is not None

    def test_all_dead_curve_has_no_onset(self):
        w = np.linspace(0.1e-9, 0.5e-9, 5)
        curve = TransferCurve(w, np.zeros(5))
        assert curve.region3_onset() is None

    def test_interpolate(self):
        curve = synthetic_curve()
        assert curve.interpolate(0.6e-9) == pytest.approx(0.55e-9,
                                                          rel=0.02)

    def test_rejects_mismatched_grids(self):
        with pytest.raises(ValueError):
            TransferCurve([1e-9, 2e-9], [1e-9])

    def test_rejects_nonmonotone_grid(self):
        with pytest.raises(ValueError):
            TransferCurve([2e-9, 1e-9], [0.0, 0.0])


class TestRecommendedWin:
    def test_adds_margin_past_onset(self):
        curve = synthetic_curve()
        w = recommended_w_in(curve, margin=0.05e-9)
        assert w == pytest.approx(curve.region3_onset() + 0.05e-9)

    def test_raises_without_asymptote(self):
        w = np.linspace(0.1e-9, 0.5e-9, 5)
        curve = TransferCurve(w, np.zeros(5))
        with pytest.raises(ValueError):
            recommended_w_in(curve)


class TestRealCurve:
    """On the session-scoped electrically measured curve."""

    def test_three_regions_exist(self, nominal_transfer_curve):
        curve = nominal_transfer_curve
        assert curve.dampened_limit() > 0.1e-9
        onset = curve.region3_onset()
        assert onset is not None
        assert onset > curve.dampened_limit()

    def test_w_out_monotone(self, nominal_transfer_curve):
        w = nominal_transfer_curve.w_out
        assert all(b >= a - 1e-12 for a, b in zip(w, w[1:]))

    def test_asymptotic_slope_near_unity(self, nominal_transfer_curve):
        slopes = nominal_transfer_curve.slopes()
        assert abs(slopes[-1] - 1.0) < 0.25

    def test_output_never_exceeds_input_plus_margin(
            self, nominal_transfer_curve):
        curve = nominal_transfer_curve
        assert np.all(curve.w_out <= curve.w_in + 0.1e-9)


class TestMinimumPropagatable:
    def test_bisection_brackets_dampened_limit(self, tech, test_dt):
        path = build_path(tech=tech)
        w_min = minimum_propagatable_width(path, lo=0.1e-9, hi=0.6e-9,
                                           tol=10e-12, dt=test_dt)
        assert 0.2e-9 < w_min < 0.35e-9

    def test_result_actually_propagates(self, tech, test_dt):
        from repro.core import measure_output_pulse
        path = build_path(tech=tech)
        w_min = minimum_propagatable_width(path, lo=0.1e-9, hi=0.6e-9,
                                           tol=10e-12, dt=test_dt)
        w_out, _ = measure_output_pulse(path, w_min, dt=test_dt)
        assert w_out > 0.0
