"""Bridging critical-resistance tests."""

import pytest

from repro.core import (bridging_critical_resistance, build_instance,
                        static_levels_correct)
from repro.faults import BridgingFault, inject
from repro.montecarlo import NominalModel


@pytest.fixture(scope="module")
def r_crit():
    return bridging_critical_resistance(rel_tol=0.05)


class TestCriticalResistance:
    def test_exists_in_plausible_band(self, r_crit):
        assert r_crit is not None
        assert 100.0 < r_crit < 10e3

    def test_error_below_and_correct_above(self, r_crit):
        reference = build_instance(sample=NominalModel())
        below = inject(build_instance(sample=NominalModel()),
                       BridgingFault(2, r_crit * 0.7))
        above = inject(build_instance(sample=NominalModel()),
                       BridgingFault(2, r_crit * 1.5))
        # contention input level for the default fault: victim a2 wants 1
        assert not static_levels_correct(below, 1,
                                         reference_path=reference)
        assert static_levels_correct(above, 1,
                                     reference_path=reference)

    def test_benign_range_returns_none(self):
        result = bridging_critical_resistance(r_lo=30e3, r_hi=60e3)
        assert result is None


class TestStaticLevels:
    def test_healthy_circuit_is_correct(self):
        path = build_instance(sample=NominalModel())
        reference = build_instance(sample=NominalModel())
        assert static_levels_correct(path, 0, reference_path=reference)
        assert static_levels_correct(path, 1, reference_path=reference)

    def test_hard_bridge_is_incorrect(self):
        faulty = inject(build_instance(sample=NominalModel()),
                        BridgingFault(2, 150.0))
        reference = build_instance(sample=NominalModel())
        assert not static_levels_correct(faulty, 1,
                                         reference_path=reference)
