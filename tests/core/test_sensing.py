"""Pulse detector model tests."""

import pytest

from repro.core import PulseDetector


class TestPulseDetector:
    def test_transition_seen_at_threshold(self):
        d = PulseDetector(200e-12)
        assert d.transition_seen(200e-12)
        assert not d.transition_seen(199e-12)

    def test_fault_detected_is_complement(self):
        d = PulseDetector(200e-12)
        assert d.fault_detected(0.0)
        assert not d.fault_detected(300e-12)

    def test_sensitivity_factor_raises_threshold(self):
        d = PulseDetector(200e-12)
        assert d.effective_threshold(1.1) == pytest.approx(220e-12)
        assert d.fault_detected(210e-12, factor=1.1)
        assert not d.fault_detected(210e-12, factor=1.0)

    def test_scaled_returns_new_detector(self):
        d = PulseDetector(200e-12)
        e = d.scaled(0.9)
        assert e.omega_th == pytest.approx(180e-12)
        assert d.omega_th == pytest.approx(200e-12)

    def test_dampened_pulse_always_detected(self):
        assert PulseDetector(1e-12).fault_detected(0.0)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            PulseDetector(0.0)
