"""Monte Carlo engine tests."""

import pytest

from repro.montecarlo import VariationModel, run_population


def population(n=4):
    return [VariationModel(seed=i) for i in range(n)]


class TestRunPopulation:
    def test_results_aligned_with_samples(self):
        result = run_population(lambda m: m.seed * 2, population())
        assert result.values == [0, 2, 4, 6]
        assert len(result) == 4

    def test_iterable_and_indexable(self):
        result = run_population(lambda m: m.seed, population())
        assert list(result) == [0, 1, 2, 3]
        assert result[2] == 2

    def test_progress_callback_sees_each(self):
        seen = []
        run_population(lambda m: None, population(),
                       progress=lambda i, n, m: seen.append((i, n)))
        assert seen == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_error_propagates_by_default(self):
        def boom(sample):
            raise RuntimeError("boom")
        with pytest.raises(RuntimeError):
            run_population(boom, population())

    def test_collect_errors_mode(self):
        def sometimes(sample):
            if sample.seed == 2:
                raise RuntimeError("boom")
            return sample.seed
        result = run_population(sometimes, population(),
                                collect_errors=True)
        assert result.n_failed == 1
        assert 2 in result.errors
        assert result.values[2] is None
        assert result.ok_values() == [0, 1, 3]

    def test_legit_none_result_is_not_a_failure(self):
        """Regression: a worker may legitimately return None; only real
        failures must be excluded from ok_values / counted in n_failed."""
        def flaky_or_none(sample):
            if sample.seed == 1:
                return None
            if sample.seed == 3:
                raise RuntimeError("boom")
            return sample.seed
        result = run_population(flaky_or_none, population(),
                                collect_errors=True)
        assert result.n_failed == 1
        assert result.ok_values() == [0, None, 2]
        assert result.values == [0, None, 2, None]
        assert result[1] is None and 1 not in result.errors
        assert result[3] is None and 3 in result.errors

    def test_all_none_results_report_zero_failures(self):
        result = run_population(lambda m: None, population(),
                                collect_errors=True)
        assert result.n_failed == 0
        assert result.ok_values() == [None] * 4

    def test_executor_path_matches_serial(self):
        from repro.runtime import SerialExecutor
        serial = run_population(lambda m: m.seed * 3, population())
        routed = run_population(lambda m: m.seed * 3, population(),
                                executor=SerialExecutor(retries=1))
        assert routed.values == serial.values

    def test_executor_fail_fast_raises(self):
        from repro.runtime import SerialExecutor

        def boom(sample):
            raise ValueError("bad sample")
        with pytest.raises(Exception) as excinfo:
            run_population(boom, population(),
                           executor=SerialExecutor(retries=1))
        assert "bad sample" in str(excinfo.value)


class TestRunPopulationBatched:
    def test_chunked_results_aligned(self):
        result = run_population(
            None, population(7),
            batch_worker=lambda chunk: [m.seed * 2 for m in chunk],
            batch_size=3)
        assert result.values == [0, 2, 4, 6, 8, 10, 12]

    def test_progress_sees_every_sample(self):
        seen = []
        run_population(None, population(5),
                       batch_worker=lambda chunk: [0 for _ in chunk],
                       batch_size=2,
                       progress=lambda i, n, m: seen.append((i, n)))
        assert seen == [(i, 5) for i in range(5)]

    def test_chunk_failure_confined_in_collect_mode(self):
        def flaky(chunk):
            if any(m.seed == 2 for m in chunk):
                raise RuntimeError("boom")
            return [m.seed for m in chunk]
        result = run_population(None, population(6), batch_worker=flaky,
                                batch_size=2, collect_errors=True)
        assert sorted(result.errors) == [2, 3]
        assert result.values == [0, 1, None, None, 4, 5]
        assert result.ok_values() == [0, 1, 4, 5]

    def test_chunk_failure_raises_by_default(self):
        def boom(chunk):
            raise RuntimeError("boom")
        with pytest.raises(RuntimeError):
            run_population(None, population(), batch_worker=boom,
                           batch_size=2)

    def test_misaligned_batch_worker_rejected(self):
        result = run_population(None, population(4),
                                batch_worker=lambda chunk: chunk[:-1],
                                batch_size=4, collect_errors=True)
        assert result.n_failed == 4
        assert all(isinstance(e, ValueError)
                   for e in result.errors.values())

    def test_executor_path_matches_serial(self):
        from repro.runtime import SerialExecutor

        def worker(chunk):
            return [m.seed * 3 for m in chunk]
        serial = run_population(None, population(6), batch_worker=worker,
                                batch_size=4)
        routed = run_population(None, population(6), batch_worker=worker,
                                batch_size=4,
                                executor=SerialExecutor(retries=1))
        assert routed.values == serial.values
