"""Statistics helper tests."""

import pytest

from repro.montecarlo import (coverage_fraction, samples_for_halfwidth,
                              summarize, wilson_excludes, wilson_halfwidth,
                              wilson_interval)


class TestCoverageFraction:
    def test_basic_fraction(self):
        assert coverage_fraction([1, 2, 3, 4], lambda v: v > 2) == 0.5

    def test_all_and_none(self):
        assert coverage_fraction([1, 2], lambda v: True) == 1.0
        assert coverage_fraction([1, 2], lambda v: False) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coverage_fraction([], lambda v: True)


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["n"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["median"] == pytest.approx(2.5)

    def test_single_value_std_zero(self):
        assert summarize([5.0])["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestWilson:
    def test_interval_contains_point_estimate(self):
        lo, hi = wilson_interval(7, 10)
        assert lo < 0.7 < hi

    def test_zero_hits_lower_bound_is_zero(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        assert hi > 0.0

    def test_full_hits_upper_bound_is_one(self):
        lo, hi = wilson_interval(10, 10)
        assert hi == 1.0
        assert lo < 1.0

    def test_narrows_with_n(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(50, 100)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestWilsonHalfwidth:
    def test_matches_interval(self):
        lo, hi = wilson_interval(7, 10)
        assert wilson_halfwidth(7, 10) == pytest.approx(0.5 * (hi - lo))

    def test_shrinks_with_n(self):
        assert wilson_halfwidth(50, 100) < wilson_halfwidth(5, 10)

    def test_worst_case_at_half(self):
        # p = 0.5 is the widest interval at fixed n
        assert wilson_halfwidth(8, 16) >= wilson_halfwidth(1, 16)
        assert wilson_halfwidth(8, 16) >= wilson_halfwidth(15, 16)


class TestWilsonExcludes:
    def test_interior_target(self):
        # 0/20 hits: the interval sits well below 0.5
        assert wilson_excludes(0, 20, 0.5)
        # 10/20: the interval straddles 0.5
        assert not wilson_excludes(10, 20, 0.5)
        # 20/20: entirely above 0.5
        assert wilson_excludes(20, 20, 0.5)

    def test_boundary_targets_need_certainty(self):
        # target 1.0 can only be excluded by a miss, never by more hits
        assert wilson_excludes(7, 8, 1.0)
        assert not wilson_excludes(8, 8, 1.0)
        # symmetric for target 0.0
        assert wilson_excludes(1, 8, 0.0)
        assert not wilson_excludes(0, 8, 0.0)


class TestSamplesForHalfwidth:
    def test_is_minimal(self):
        for width in (0.2, 0.15, 0.1, 0.05):
            n = samples_for_halfwidth(width)
            assert wilson_halfwidth(n - n // 2, n) <= width
            if n > 1:
                m = n - 1
                assert wilson_halfwidth(m - m // 2, m) > width

    def test_monotone_in_width(self):
        assert samples_for_halfwidth(0.05) > samples_for_halfwidth(0.2)

    def test_rejects_degenerate_widths(self):
        with pytest.raises(ValueError):
            samples_for_halfwidth(0.0)
        with pytest.raises(ValueError):
            samples_for_halfwidth(0.5)
