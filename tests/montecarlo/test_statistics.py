"""Statistics helper tests."""

import pytest

from repro.montecarlo import coverage_fraction, summarize, wilson_interval


class TestCoverageFraction:
    def test_basic_fraction(self):
        assert coverage_fraction([1, 2, 3, 4], lambda v: v > 2) == 0.5

    def test_all_and_none(self):
        assert coverage_fraction([1, 2], lambda v: True) == 1.0
        assert coverage_fraction([1, 2], lambda v: False) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coverage_fraction([], lambda v: True)


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["n"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["median"] == pytest.approx(2.5)

    def test_single_value_std_zero(self):
        assert summarize([5.0])["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestWilson:
    def test_interval_contains_point_estimate(self):
        lo, hi = wilson_interval(7, 10)
        assert lo < 0.7 < hi

    def test_zero_hits_lower_bound_is_zero(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        assert hi > 0.0

    def test_full_hits_upper_bound_is_one(self):
        lo, hi = wilson_interval(10, 10)
        assert hi == 1.0
        assert lo < 1.0

    def test_narrows_with_n(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(50, 100)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
