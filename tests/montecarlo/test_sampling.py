"""Variation-model tests: determinism, truncation, scaling."""

import numpy as np
import pytest

from repro.cells import default_technology
from repro.montecarlo import (GLOBAL_FIELDS, NominalModel, VariationModel,
                              sample_population)


class TestDeterminism:
    def test_same_seed_same_global_factors(self):
        a = VariationModel(seed=7)
        b = VariationModel(seed=7)
        assert a.global_factors == b.global_factors

    def test_different_seeds_differ(self):
        a = VariationModel(seed=7)
        b = VariationModel(seed=8)
        assert a.global_factors != b.global_factors

    def test_device_factors_stable_per_name(self):
        m = VariationModel(seed=3)
        assert m.device_factors("g1.MN") == m.device_factors("g1.MN")

    def test_device_factors_differ_per_name(self):
        m = VariationModel(seed=3)
        assert m.device_factors("g1.MN") != m.device_factors("g1.MP")

    def test_device_factors_independent_of_call_order(self):
        m1 = VariationModel(seed=3)
        f_a_first = m1.device_factors("a")
        m1.device_factors("b")
        m2 = VariationModel(seed=3)
        m2.device_factors("b")
        assert m2.device_factors("a") == f_a_first

    def test_timing_factor_stable(self):
        m = VariationModel(seed=3)
        assert m.timing_factor("ff0.cq") == m.timing_factor("ff0.cq")


class TestTruncation:
    def test_factors_within_three_sigma(self):
        for seed in range(50):
            m = VariationModel(seed=seed, sigma_global=0.1)
            for factor in m.global_factors.values():
                assert 0.7 - 1e-12 <= factor <= 1.3 + 1e-12

    def test_device_factors_within_three_sigma(self):
        m = VariationModel(seed=5, sigma_local=0.1)
        for i in range(100):
            for f in m.device_factors("dev{}".format(i)):
                assert 0.7 - 1e-12 <= f <= 1.3 + 1e-12

    def test_factors_scatter_around_one(self):
        values = [VariationModel(seed=s).global_factors["kpn"]
                  for s in range(200)]
        assert abs(np.mean(values) - 1.0) < 0.02


class TestNominal:
    def test_everything_is_one(self):
        m = NominalModel()
        assert all(f == 1.0 for f in m.global_factors.values())
        assert m.device_factors("anything") == (1.0, 1.0, 1.0)
        assert m.timing_factor("anything") == 1.0

    def test_apply_to_technology_identity(self):
        tech = default_technology()
        assert NominalModel().apply_to_technology(tech) is tech


class TestTechnologyApplication:
    def test_scales_expected_fields(self):
        tech = default_technology()
        m = VariationModel(seed=9, sigma_global=0.1)
        perturbed = m.apply_to_technology(tech)
        for field in GLOBAL_FIELDS:
            assert getattr(perturbed, field) == pytest.approx(
                getattr(tech, field) * m.global_factors[field])

    def test_untouched_fields_stay(self):
        tech = default_technology()
        m = VariationModel(seed=9)
        perturbed = m.apply_to_technology(tech)
        assert perturbed.vdd == tech.vdd
        assert perturbed.length == tech.length


class TestPopulation:
    def test_population_size_and_distinct_seeds(self):
        pop = sample_population(10, base_seed=100)
        assert len(pop) == 10
        assert len({m.seed for m in pop}) == 10

    def test_population_reproducible(self):
        a = sample_population(4, base_seed=1)
        b = sample_population(4, base_seed=1)
        assert [m.global_factors for m in a] == [m.global_factors for m in b]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            sample_population(0)

    def test_kwargs_forwarded(self):
        pop = sample_population(2, sigma_local=0.2)
        assert all(m.sigma_local == 0.2 for m in pop)
