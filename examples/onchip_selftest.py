"""The complete on-chip test structure at the transistor level.

The paper's Sec. 3 environment, built out of real devices:

* an edge-to-pulse generator (inverter delay line + AND) launches the
  test pulse *locally* — its width tracks this die's process corner;
* the sensitized path under test;
* a Metra-style transition detector (XOR against a delayed copy, firing
  a precharged dynamic flag) senses the output *locally*.

One transient per row: trigger the test, read the flag.  No tester
clock, no clock distribution network — the property the whole paper
is about.

Run:  python examples/onchip_selftest.py       (about a minute)
"""

from repro.faults import BridgingFault, ExternalOpen, InternalOpen, PULL_UP
from repro.montecarlo import VariationModel
from repro.reporting import format_table
from repro.testckt import build_onchip_test, run_onchip_test

DT = 4e-12


def run_case(label, fault=None, sample=None):
    bench = build_onchip_test(fault=fault, sample=sample)
    detected, waveform = run_onchip_test(bench, dt=DT)
    half = bench.tech.vdd_half
    generated = waveform.widest_pulse(bench.path.input_node, half,
                                      "high")
    arrived = waveform.widest_pulse(bench.path.output_node, half, "low")
    flag = waveform.value_at(bench.detector.flag_node, waveform.t[-1])
    return [label, "{:.0f}".format(generated * 1e12),
            "{:.0f}".format(arrived * 1e12), "{:.2f}".format(flag),
            "FAULT" if detected else "pass"]


def main():
    rows = [
        run_case("healthy (nominal)"),
        run_case("healthy (slow corner)", sample=VariationModel(seed=42)),
        run_case("internal open 8k", InternalOpen(2, PULL_UP, 8e3)),
        run_case("external open 25k", ExternalOpen(2, 25e3)),
        run_case("bridging 2.5k", BridgingFault(2, 2.5e3)),
        run_case("benign open 300", ExternalOpen(2, 300.0)),
    ]
    print(format_table(
        ["instance", "generated pulse (ps)", "output pulse (ps)",
         "flag (V)", "verdict"], rows))
    print(
        "\nThe generator, path and detector share the die: on the slow\n"
        "corner the generated pulse widens with the path's own\n"
        "slow-down, so the healthy instance still passes — the\n"
        "self-tracking that reduced-clock testing cannot have.")


if __name__ == "__main__":
    main()
