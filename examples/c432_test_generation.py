"""Logic-level test generation on a C432-class circuit (Sec. 5 flow).

For realistic circuits, electrical simulation of every candidate path is
impractical; the paper's flow switches to the logic level:

1. enumerate structural paths through the fault site,
2. sensitize each with a path-delay-test style ATPG (side inputs at
   non-controlling values),
3. derive per-path (omega_in, omega_th) from a timing-accurate pulse
   propagation model,
4. pick the path maximising the detectable resistance range, using an
   electrically calibrated defect model.

Run:  python examples/c432_test_generation.py
"""

from repro.core import ExperimentConfig, run_path_characterization
from repro.logic import (GateTiming, generate_c432_like, run_pulse_test)
from repro.reporting import format_table


def main():
    circuit = generate_c432_like()
    print("circuit:", circuit)
    print("depth:", circuit.depth())

    config = ExperimentConfig.from_env(n_samples=6, dt=5e-12, n_paths=8)
    result = run_path_characterization(config, netlist=circuit)
    print("fault site (external resistive open):", result.fault_net)

    rows = []
    for entry in result.entries:
        rows.append([
            entry["length"],
            "{:.0f}".format(entry["omega_in"] * 1e12),
            "{:.0f}".format(entry["omega_th"] * 1e12),
            "-" if entry["r_min"] is None
            else "{:.0f}".format(entry["r_min"]),
        ])
    print("\ncandidate paths through the fault site:")
    print(format_table(
        ["gates", "omega_in (ps)", "omega_th (ps)", "R_min (ohm)"],
        rows))

    best = result.best()
    if best is None:
        print("no path detects the fault within the calibrated range")
        return
    print("\nselected path ({} gates): {}".format(
        best["length"], " -> ".join(best["path"])))
    print("test: inject a {:.0f} ps pulse at {}, watch {} with "
          "threshold {:.0f} ps; minimal detectable R = {:.0f} ohm"
          .format(best["omega_in"] * 1e12, best["path"][0],
                  best["path"][-1], best["omega_th"] * 1e12,
                  best["r_min"]))

    # Validate the generated test dynamically with the event-driven
    # timing simulator: the pulse must reach the observation point on
    # the healthy circuit.
    from repro.logic import characterize_path_for_test
    info = characterize_path_for_test(circuit, best["path"])
    check = run_pulse_test(circuit, best["path"], info["vector"],
                           best["omega_in"], timing=GateTiming())
    print("\ndynamic validation (event-driven sim): observed pulse of "
          "{:.0f} ps at {} -> {}".format(
              check.observed_width * 1e12, check.observation_net,
              "test valid" if check.observed_width > 0 else "INVALID"))


if __name__ == "__main__":
    main()
