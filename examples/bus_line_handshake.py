"""Testing a bus line with pulses under a handshake protocol.

The paper's conclusion: "Since the proposed method is completely
independent of synchronization constraints, it can also be used to test
bus lines using handshake protocols to transfer data."

This example builds a driver -> distributed-RC-wire -> receiver bus
segment, injects resistive vias of growing strength, and runs the pulse
test as a handshake transaction:

    REQ  — the near end launches the test pulse onto the line;
    ACK  — the far-end transition detector (conceptually) acknowledges
           iff the pulse arrived.

No clock appears anywhere: the decision is local to the far end.

Run:  python examples/bus_line_handshake.py
"""

from repro.cells import build_bus_line, inject_wire_open
from repro.core import PulseDetector
from repro.reporting import format_table
from repro.spice import run_transient

W_IN = 0.42e-9
DT = 4e-12


def transaction(bus, detector):
    """One REQ/ACK handshake: launch the pulse, decode the far end."""
    bus.set_input_pulse(W_IN, kind="h")
    waveform = run_transient(bus.circuit, 5e-9, DT,
                             record=[bus.output_node])
    w_out = waveform.widest_pulse(bus.output_node, bus.tech.vdd_half,
                                  "high")
    ack = detector.transition_seen(w_out)
    return w_out, ack


def main():
    bus = build_bus_line(n_segments=8)
    detector = PulseDetector(omega_th=0.25e-9)
    print("bus: {} wire segments, detector threshold {:.0f} ps\n".format(
        bus.n_segments, detector.omega_th * 1e12))

    w_out, ack = transaction(bus, detector)
    print("healthy line:  w_out = {:.0f} ps, ACK = {}".format(
        w_out * 1e12, ack))

    rows = []
    for resistance in (1e3, 2e3, 4e3, 8e3, 16e3):
        faulty = inject_wire_open(bus, segment=4, resistance=resistance)
        w_out, ack = transaction(faulty, detector)
        rows.append([resistance, "{:.0f}".format(w_out * 1e12),
                     "ACK" if ack else "no ACK -> FAULT"])
    print("\nresistive via at segment 4:")
    print(format_table(["R (ohm)", "w_out (ps)", "handshake outcome"],
                       rows))

    print(
        "\nA missing ACK identifies the defective line without any "
        "clock:\nthe same pulse-dampening physics as on logic paths, "
        "framed by the\nbus handshake.")


if __name__ == "__main__":
    main()
