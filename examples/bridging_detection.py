"""Bridging faults: where pulse propagation clearly wins.

Reproduces the paper's Sec. 4 bridging scenario (Figs. 8/9) at example
scale.  Above the critical resistance a bridge adds only a small, fast-
shrinking delay — reduced-clock testing loses it almost immediately —
while the injected pulse is still dampened over a much wider resistance
range.

Run:  python examples/bridging_detection.py
"""

from repro.core import (build_instance, measure_output_pulse,
                        measure_path_delay)
from repro.faults import BridgingFault
from repro.reporting import format_table

W_IN = 0.40e-9
RESISTANCES = [1.5e3, 2.5e3, 5e3, 10e3, 20e3, 40e3]


def main():
    healthy = build_instance()
    d_ff, _ = measure_path_delay(healthy, "rise")
    w_ff, _ = measure_output_pulse(healthy, W_IN)
    print("fault-free: path delay = {:.0f} ps, w_out = {:.0f} ps"
          .format(d_ff * 1e12, w_ff * 1e12))

    rows = []
    for r in RESISTANCES:
        faulty = build_instance(fault=BridgingFault(2, r))
        d, _ = measure_path_delay(faulty, "rise")
        w_out, _ = measure_output_pulse(faulty, W_IN)
        extra = (d - d_ff) * 1e12
        rows.append([
            r,
            "{:.0f}".format(extra),
            "{:.0f}".format(w_out * 1e12),
            "yes" if w_out == 0.0 else "no",
        ])

    print("\nbridging fault at the stage-2 output "
          "(steady aggressor, Fig. 4):")
    print(format_table(
        ["R (ohm)", "extra delay (ps)", "w_out (ps)",
         "pulse dampened?"], rows))

    print(
        "\nReading the table:\n"
        "- the extra delay decays rapidly with R (Fig. 8): a reduced\n"
        "  clock period can only catch the first row or two;\n"
        "- the output pulse width stays collapsed far beyond that\n"
        "  (Fig. 9): the pulse test covers a much wider R band, because\n"
        "  the bridge fights the pulse's excursion even when the\n"
        "  steady-state delay penalty is negligible.")


if __name__ == "__main__":
    main()
