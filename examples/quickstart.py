"""Quickstart: detect a resistive open by pulse propagation.

Builds the paper's reference structure (a sensitized 7-gate CMOS path,
simulated at the transistor level), injects an internal resistive open,
and shows the core observation of Favalli & Metra (DATE 2007): a pulse
that traverses the healthy path is swallowed by the faulty one.

Run:  python examples/quickstart.py
"""

from repro.core import build_instance, measure_output_pulse
from repro.core import PulseDetector
from repro.faults import InternalOpen, PULL_UP

W_IN = 0.40e-9          # injected pulse width (s)
RESISTANCE = 8e3        # defect strength (ohm)


def main():
    # 1. The fault-free circuit propagates the pulse.
    healthy = build_instance()
    w_out_healthy, _ = measure_output_pulse(healthy, W_IN)
    print("fault-free path:  w_in = {:.0f} ps  ->  w_out = {:.0f} ps"
          .format(W_IN * 1e12, w_out_healthy * 1e12))

    # 2. The same instance with a resistive open in the pull-up network
    #    of gate 2 (Fig. 1a of the paper) dampens it.
    faulty = build_instance(fault=InternalOpen(2, PULL_UP, RESISTANCE))
    w_out_faulty, _ = measure_output_pulse(faulty, W_IN)
    print("faulty path:      w_in = {:.0f} ps  ->  w_out = {:.0f} ps"
          .format(W_IN * 1e12, w_out_faulty * 1e12))

    # 3. A transition detector at the path output flags the fault by the
    #    *absence* of the expected pulse.
    detector = PulseDetector(omega_th=0.30e-9)
    print("\ndetector threshold: {:.0f} ps".format(
        detector.omega_th * 1e12))
    print("healthy instance flagged: {}".format(
        detector.fault_detected(w_out_healthy)))
    print("faulty  instance flagged: {}".format(
        detector.fault_detected(w_out_faulty)))

    assert not detector.fault_detected(w_out_healthy)
    assert detector.fault_detected(w_out_faulty)
    print("\nOK: the open is detected by pulse propagation.")


if __name__ == "__main__":
    main()
