"""Resistive-open coverage sweep: pulse testing vs reduced-clock testing.

Reproduces the Figs. 6/7 experiment at example scale: calibrate both
methods on a fault-free Monte Carlo population (yield-first, no false
positives), then sweep the open resistance and compare coverage — how
each method degrades under its own +-10% test-parameter fluctuation.

Run:  python examples/rop_coverage_sweep.py          (a few minutes)
      REPRO_FAST=1 python examples/rop_coverage_sweep.py
"""

import numpy as np

from repro.core import ExperimentConfig, run_open_coverage
from repro.reporting import ascii_plot, coverage_table


def main():
    config = ExperimentConfig.from_env(
        n_samples=8, dt=4e-12,
        rop_resistances=list(np.geomspace(1e3, 40e3, 7)))
    print("running:", config)
    experiment = run_open_coverage(config)

    print("\ncalibrated test parameters")
    print("  pulse method:   omega_in = {:.0f} ps, omega_th = {:.0f} ps"
          .format(experiment.calibration.omega_in * 1e12,
                  experiment.calibration.omega_th * 1e12))
    print("  reduced clock:  T* = {:.0f} ps".format(
        experiment.dftest.t_star * 1e12))

    print("\nC_pulse (proposed method)")
    print(coverage_table(experiment.pulse))
    print("\nC_del (reduced-clock DF testing)")
    print(coverage_table(experiment.delay))

    series = {}
    for label in ("0.9*T", "1.1*T"):
        curve = experiment.delay.curve(label)
        series["del " + label] = (curve.resistances, curve.coverage)
    for label in ("0.9*w_th", "1.1*w_th"):
        curve = experiment.pulse.curve(label)
        series["pulse " + label] = (curve.resistances, curve.coverage)
    print("\nspread under +-10% test-parameter fluctuation:")
    print(ascii_plot(series, x_label="R (ohm)", y_label="coverage"))

    spread_del = sum(
        a - b for a, b in zip(experiment.delay.curve("0.9*T").coverage,
                              experiment.delay.curve("1.1*T").coverage))
    spread_pulse = sum(
        a - b
        for a, b in zip(experiment.pulse.curve("1.1*w_th").coverage,
                        experiment.pulse.curve("0.9*w_th").coverage))
    print("\nintegrated coverage spread: DF testing {:.2f}  vs  "
          "pulse testing {:.2f}".format(spread_del, spread_pulse))
    print("-> the locally generated/sensed pulse test is the more "
          "robust of the two, as the paper argues.")


if __name__ == "__main__":
    main()
